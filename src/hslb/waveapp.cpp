#include "hslb/waveapp.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "perf/terms.hpp"
#include "sim/noise.hpp"

namespace hslb {

namespace {

/// B&B diagnostics copied into the report row (the headline subset; wave
/// substrates are solver consumers, not solver benches).
void copy_bnb_stats(SolverStats& out, const minlp::BnbResult& bnb) {
  out.status = minlp::to_string(bnb.status);
  out.nodes = bnb.nodes;
  out.cuts = bnb.cuts;
  out.gap = bnb.gap;
  out.rel_gap = bnb.rel_gap;
  out.seconds = bnb.seconds;
  out.lp_solves = bnb.lp_solves;
  out.lp_pivots = bnb.lp_pivots;
  out.warm_solves = bnb.warm_solves;
  out.waves = bnb.waves;
}

std::vector<double> flatten_fit_params(
    const std::vector<std::pair<std::string, perf::FitResult>>& fits) {
  std::vector<double> out;
  for (const auto& [name, fit] : fits) {
    for (std::size_t i = 0; i < fit.cost.num_terms(); ++i) {
      const auto p = fit.cost.params(i);
      out.insert(out.end(), p.begin(), p.end());
    }
  }
  return out;
}

}  // namespace

WaveApplication::WaveApplication(WaveWorkload workload, long long nodes,
                                 WaveOptions options)
    : workload_(std::move(workload)), nodes_(nodes), options_(std::move(options)) {
  const auto tasks = static_cast<long long>(workload_.tasks.size());
  HSLB_EXPECTS(tasks >= 1);
  HSLB_EXPECTS(nodes_ >= tasks);
  HSLB_EXPECTS(workload_.waves >= 1);
  HSLB_EXPECTS(options_.fit_points >= 2);
  // Same probe ceiling rationale as FMO: a task can never get more than
  // budget - (T-1) nodes, and probing past several fair shares is wasted.
  const long long fair = std::max<long long>(1, nodes_ / tasks);
  hi_ = std::max<long long>(8, std::min(nodes_ - tasks + 1, 8 * fair));
  counts_ = geometric_node_counts(
      1, hi_, static_cast<std::size_t>(options_.fit_points));
  if (options_.machine.nodes == 0) {
    mach_ = sim::Machine{"cluster", static_cast<std::size_t>(nodes_), 1};
  } else {
    HSLB_EXPECTS(options_.machine.nodes >= static_cast<std::size_t>(nodes_));
    mach_ = options_.machine;
  }
  perturb_.noise_cv = options_.noise_cv;
  perturb_.seed = options_.seed;
  if (options_.straggler_cv > 0.0)
    perturb_.node_slowdown = sim::Perturbation::stragglers(
        mach_.nodes, options_.straggler_cv, options_.seed);
  perturb_.fail_node = options_.fail_node;
  perturb_.fail_time = options_.fail_time;
  perturb_.fail_downtime = options_.fail_downtime;
  for (std::size_t t = 0; t < workload_.tasks.size(); ++t)
    index_of_[workload_.tasks[t].name] = t;
  HSLB_EXPECTS(index_of_.size() == workload_.tasks.size());
}

std::string WaveApplication::name() const {
  return "wave/" + workload_.name;
}

GatherPlan WaveApplication::gather_plan() {
  GatherPlan plan;
  plan.reserve(workload_.tasks.size());
  for (const auto& t : workload_.tasks) plan.emplace_back(t.name, counts_);
  return plan;
}

double WaveApplication::noisy(double true_seconds, std::size_t stream,
                              long long n, std::uint64_t rep) const {
  const std::uint64_t seed =
      derive_seed(derive_seed(options_.bench_seed, stream),
                  static_cast<std::uint64_t>(n) * 4096 + rep);
  sim::NoiseModel noise(options_.bench_noise_cv, seed);
  return noise.perturb(true_seconds);
}

double WaveApplication::probe(const std::string& task, long long n,
                              std::uint64_t rep) {
  const auto it = index_of_.find(task);
  HSLB_ASSERT(it != index_of_.end());
  return noisy(workload_.tasks[it->second].truth.eval(static_cast<double>(n)),
               it->second, n, rep);
}

std::vector<BudgetTask> WaveApplication::budget_tasks(
    const std::vector<std::pair<std::string, perf::FitResult>>& fits,
    long long max_nodes) const {
  HSLB_EXPECTS(fits.size() == workload_.tasks.size());
  std::vector<BudgetTask> tasks;
  tasks.reserve(fits.size());
  for (const auto& [name, fit] : fits)
    tasks.push_back(BudgetTask{name, fit.model, 1, max_nodes});
  // Pinned machine term: each task's working set against node memory (no
  // halo traffic in the wave model, so no comm term). A no-op on machines
  // that do not model memory.
  if (mach_.models_memory()) {
    for (std::size_t t = 0; t < tasks.size(); ++t) {
      if (workload_.tasks[t].memory_gb > 0.0)
        tasks[t].model.add(perf::make_memory_term(workload_.tasks[t].memory_gb,
                                                  mach_.memory_gb_per_node,
                                                  mach_.page_s_per_gb));
      // The memory knapsack can force a wider span than the probe ceiling;
      // feasibility wins over staying inside the interpolated range.
      tasks[t].max_nodes =
          std::max(tasks[t].max_nodes, tasks[t].model.min_feasible_nodes());
    }
  }
  return tasks;
}

SolveOutcome WaveApplication::solve(
    const std::vector<std::pair<std::string, perf::FitResult>>& fits) {
  SolveOutcome out;
  const auto tasks = budget_tasks(fits, hi_);
  if (options_.solve_with_minlp) {
    const auto model = build_budget_minlp(tasks, nodes_, options_.objective);
    const auto bnb = minlp::solve(model, options_.bnb);
    out.allocation = allocation_from_minlp(tasks, bnb.x, options_.objective);
    copy_bnb_stats(out.solver, bnb);
    last_x_ = bnb.x;
    last_pool_ = bnb.pool_cuts;
    last_fit_params_ = flatten_fit_params(fits);
  } else {
    out.allocation = solve_budget(tasks, nodes_, options_.objective);
    out.solver.status = to_string(options_.objective) + " exact greedy";
  }
  double wave = 0.0;
  for (const auto& t : out.allocation.tasks)
    wave = std::max(wave, t.predicted_seconds);
  out.predicted_total = static_cast<double>(workload_.waves) *
                        (wave + workload_.sync_overhead);
  // Term-wise predicted task-seconds over all waves (allocation entries
  // are in task order for both solver paths).
  const double waves = static_cast<double>(workload_.waves);
  for (std::size_t t = 0; t < tasks.size(); ++t) {
    const double n = static_cast<double>(out.allocation.tasks[t].nodes);
    const auto& m = tasks[t].model;
    for (std::size_t i = 0; i < m.num_terms(); ++i) {
      const std::string& tn = m.term(i).name();
      auto it = std::find_if(
          out.term_predictions.begin(), out.term_predictions.end(),
          [&](const TermReport& r) { return r.term == tn; });
      if (it == out.term_predictions.end()) {
        out.term_predictions.push_back({tn, 0.0, 0.0});
        it = std::prev(out.term_predictions.end());
      }
      it->predicted_seconds += waves * m.term_seconds(i, n);
    }
  }
  return out;
}

long long WaveApplication::budget() const {
  return std::min<long long>(nodes_, static_cast<long long>(seg_count_));
}

sim::NodeSet WaveApplication::barrier_set() const {
  if (failed_) return {seg_first_, seg_count_};
  return {0, mach_.nodes};
}

void WaveApplication::reset_run_state() {
  seg_first_ = 0;
  seg_count_ = mach_.nodes;
  failed_ = false;
  wave_ = 0;
  done_ = false;
  pending_.assign(workload_.tasks.size(), 1);
  clock_ = 0.0;
  completed_ = true;
  trace_ = {};
  trace_.machine = mach_.name;
  trace_.nodes = mach_.nodes;
  trace_.cores_per_node = mach_.cores_per_node;
  task_busy_.assign(workload_.tasks.size(), 0.0);
  task_seconds_ = 0.0;
  comm_seconds_ = 0.0;
  page_seconds_ = 0.0;
  restarts_ = 0;
  hslb_total_ = 0.0;
  dlb_ran_ = false;
  installed_ = false;
}

void WaveApplication::install(const Allocation& allocation) {
  HSLB_EXPECTS(allocation.tasks.size() == workload_.tasks.size());
  HSLB_EXPECTS(allocation.total_nodes() <= budget());
  alloc_nodes_.resize(workload_.tasks.size());
  blocks_.resize(workload_.tasks.size());
  std::size_t offset = seg_first_;
  for (std::size_t t = 0; t < workload_.tasks.size(); ++t) {
    const auto& entry = allocation.find(workload_.tasks[t].name);
    HSLB_EXPECTS(entry.nodes >= 1);
    alloc_nodes_[t] = entry.nodes;
    blocks_[t] = {offset, static_cast<std::size_t>(entry.nodes)};
    offset += static_cast<std::size_t>(entry.nodes);
  }
  installed_ = true;
}

void WaveApplication::begin_epochs(const SolveOutcome& solution) {
  reset_run_state();
  install(solution.allocation);
}

EpochOutcome WaveApplication::execute_epoch(std::size_t epoch) {
  (void)epoch;
  HSLB_EXPECTS(installed_);
  EpochOutcome r;
  if (done_) {
    r.done = true;
    return r;
  }
  const double epoch_start = clock_;
  sim::Runtime rt(mach_);
  const std::string phase = "wave" + std::to_string(wave_);
  constexpr std::size_t kNone = static_cast<std::size_t>(-1);
  std::vector<std::size_t> ids(workload_.tasks.size(), kNone);
  std::vector<std::size_t> wave_ids;
  for (std::size_t t = 0; t < workload_.tasks.size(); ++t) {
    if (!pending_[t]) continue;
    ids[t] = rt.add_task(
        workload_.tasks[t].name,
        workload_.tasks[t].truth.eval(static_cast<double>(alloc_nodes_[t])),
        blocks_[t], {}, phase, false, {0.0, workload_.tasks[t].memory_gb});
    wave_ids.push_back(ids[t]);
  }
  const std::size_t sync_id =
      rt.add_task("sync", workload_.sync_overhead, barrier_set(),
                  std::move(wave_ids), phase, true);

  sim::EpochOptions eo;
  eo.initial_node_free.assign(mach_.nodes, clock_);
  eo.stop_on_failure = true;
  sim::EpochState state;
  const auto rr = rt.run(perturb_, eo, &state);
  trace_.append(rr.trace);
  restarts_ += rr.restarts;
  comm_seconds_ += rr.comm_seconds;
  page_seconds_ += rr.page_seconds;

  std::vector<double> durations;
  for (std::size_t t = 0; t < workload_.tasks.size(); ++t) {
    if (ids[t] == kNone || !state.ran[ids[t]]) continue;
    const double secs = rr.tasks[ids[t]].end - rr.tasks[ids[t]].start;
    task_busy_[t] += secs;
    task_seconds_ += secs;
    durations.push_back(secs);
    pending_[t] = 0;
  }
  for (const auto& [id, seconds] : state.observed) {
    for (std::size_t t = 0; t < workload_.tasks.size(); ++t) {
      if (ids[t] != id) continue;
      r.observations.push_back({workload_.tasks[t].name,
                                static_cast<double>(alloc_nodes_[t]), seconds,
                                0});
      break;
    }
  }

  if (rr.failure_paused) {
    // Shrink the world to the larger contiguous half either side of the
    // failed node (ties keep the low half) and advance the clock past all
    // in-flight work, exactly like fmo::EpochRunner.
    r.failure_detected = true;
    failed_ = true;
    const auto fn = static_cast<std::size_t>(options_.fail_node);
    const std::size_t end = seg_first_ + seg_count_;
    HSLB_ASSERT(fn >= seg_first_ && fn < end);
    const std::size_t left = fn - seg_first_;
    const std::size_t right = end - fn - 1;
    if (left >= right) {
      seg_count_ = left;
    } else {
      seg_first_ = fn + 1;
      seg_count_ = right;
    }
    for (std::size_t n = seg_first_; n < seg_first_ + seg_count_; ++n)
      clock_ = std::max(clock_, state.node_free[n]);
    if (budget() < static_cast<long long>(workload_.tasks.size())) {
      // Survivors cannot host one node per task: unrecoverable.
      done_ = true;
      completed_ = false;
      r.done = true;
    }
    r.epochs_remaining = static_cast<double>(workload_.waves - wave_);
    r.epoch_seconds = clock_ - epoch_start;
    return r;
  }

  clock_ = rr.tasks[sync_id].end;
  ++wave_;
  pending_.assign(workload_.tasks.size(), 1);
  if (wave_ >= workload_.waves) done_ = true;
  r.done = done_;
  r.imbalance = durations.empty() ? 0.0 : stats::imbalance(durations);
  r.epochs_remaining = static_cast<double>(workload_.waves - wave_);
  r.epoch_seconds = clock_ - epoch_start;
  return r;
}

ResolveOutcome WaveApplication::resolve(
    const std::vector<std::pair<std::string, perf::FitResult>>& fits,
    const SolveOutcome& incumbent) {
  const long long nodes = budget();
  auto tasks = budget_tasks(fits, std::min(hi_, nodes));
  std::vector<long long> inc_nodes;
  inc_nodes.reserve(tasks.size());
  for (const auto& t : tasks)
    inc_nodes.push_back(incumbent.allocation.find(t.name).nodes);

  SolveOutcome out;
  if (options_.solve_with_minlp) {
    const auto model = build_budget_minlp(tasks, nodes, options_.objective);
    minlp::BnbOptions bnb_opt = options_.bnb;
    // Warm seeding from the running allocation and the previous search
    // (same closed-loop idiom as the FMO substrate).
    std::vector<long long> warm = inc_nodes;
    for (std::size_t t = 0; t < tasks.size(); ++t)
      warm[t] = std::clamp(warm[t], tasks[t].min_nodes, tasks[t].max_nodes);
    bnb_opt.seed_incumbent = minlp_warm_start(tasks, warm, options_.objective);
    bnb_opt.seed_points.push_back(bnb_opt.seed_incumbent);
    if (!last_x_.empty()) bnb_opt.seed_points.push_back(last_x_);
    if (!last_pool_.empty() && flatten_fit_params(fits) == last_fit_params_)
      bnb_opt.seed_cuts = last_pool_;
    const auto bnb = minlp::solve(model, bnb_opt);
    out.allocation = allocation_from_minlp(tasks, bnb.x, options_.objective);
    copy_bnb_stats(out.solver, bnb);
    last_x_ = bnb.x;
    last_pool_ = bnb.pool_cuts;
    last_fit_params_ = flatten_fit_params(fits);
  } else {
    out.allocation = solve_budget(tasks, nodes, options_.objective);
    out.solver.status = to_string(options_.objective) + " exact greedy (warm)";
  }

  std::vector<long long> new_nodes;
  new_nodes.reserve(out.allocation.tasks.size());
  for (const auto& t : out.allocation.tasks) new_nodes.push_back(t.nodes);
  ResolveOutcome rr;
  out.predicted_total =
      evaluate_objective(tasks, new_nodes, options_.objective) +
      workload_.sync_overhead;
  rr.incumbent_predicted =
      evaluate_objective(tasks, inc_nodes, options_.objective) +
      workload_.sync_overhead;
  rr.solution = std::move(out);
  return rr;
}

double WaveApplication::migration_volume(const Allocation& next) const {
  double volume = 0.0;
  std::size_t offset = seg_first_;
  for (std::size_t t = 0; t < workload_.tasks.size(); ++t) {
    const auto& entry = next.find(workload_.tasks[t].name);
    const sim::NodeSet block{offset, static_cast<std::size_t>(entry.nodes)};
    offset += block.count;
    if (!installed_ || block.first != blocks_[t].first ||
        block.count != blocks_[t].count)
      volume += workload_.tasks[t].memory_gb;
  }
  return volume;
}

double WaveApplication::migration_cost(const SolveOutcome& from,
                                       const SolveOutcome& to) const {
  (void)from;  // compared against the installed layout
  return mach_.migration_seconds(migration_volume(to.allocation));
}

double WaveApplication::apply_allocation(const SolveOutcome& solution) {
  const double stall =
      mach_.migration_seconds(migration_volume(solution.allocation));
  if (stall > 0.0) {
    trace_.events.push_back({"migrate", "rebalance", seg_first_, seg_count_,
                             clock_, clock_ + stall, false});
    clock_ += stall;
  }
  install(solution.allocation);
  return stall;
}

double WaveApplication::finish_epochs() {
  hslb_total_ = clock_;
  return hslb_total_;
}

double WaveApplication::execute(const SolveOutcome& solution) {
  // Execute *is* the epoch loop, so an untriggered adaptive run is
  // bit-identical by construction. With no controller to reallocate, a
  // permanent-failure pause ends the run incomplete (the static-schedule
  // brittleness the robustness benches measure).
  begin_epochs(solution);
  for (std::size_t e = 0; !done_; ++e) {
    const EpochOutcome eo = execute_epoch(e);
    if (eo.done) break;
    if (eo.failure_detected) {
      done_ = true;
      completed_ = false;
      break;
    }
  }
  return finish_epochs();
}

double WaveApplication::dlb_total_seconds() {
  if (!dlb_ran_) run_dlb_baseline();
  return dlb_total_;
}

void WaveApplication::run_dlb_baseline() {
  // Dynamic baseline on the same workload, machine, and noise draws: each
  // wave is a shared queue drained largest-first by uniform groups, waves
  // chained by the sync overhead. Phase/task names match the HSLB run, so
  // the keyed noise draws are shared between the two schedules.
  dlb_ran_ = true;
  const std::size_t G = options_.dlb_groups == 0 ? workload_.tasks.size()
                                                 : options_.dlb_groups;
  std::vector<sim::NodeSet> groups;
  groups.reserve(G);
  const std::size_t base = mach_.nodes / G;
  const std::size_t rem = mach_.nodes % G;
  std::size_t offset = 0;
  for (std::size_t g = 0; g < G; ++g) {
    const std::size_t size = base + (g < rem ? 1 : 0);
    groups.push_back({offset, size});
    offset += size;
  }

  std::vector<std::size_t> order(workload_.tasks.size());
  for (std::size_t t = 0; t < order.size(); ++t) order[t] = t;
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return workload_.tasks[a].truth.eval(1.0) >
           workload_.tasks[b].truth.eval(1.0);
  });

  double start = 0.0;
  bool completed = true;
  for (long long w = 0; w < workload_.waves && completed; ++w) {
    std::vector<sim::Runtime::QueueTask> queue;
    queue.reserve(order.size());
    for (std::size_t t : order) {
      const perf::Model& truth = workload_.tasks[t].truth;
      queue.push_back({workload_.tasks[t].name,
                       [truth](long long n) {
                         return truth.eval(static_cast<double>(n));
                       },
                       "wave" + std::to_string(w), 0.0,
                       workload_.tasks[t].memory_gb});
    }
    const auto res =
        sim::Runtime::run_queue(mach_, groups, queue, perturb_, start);
    completed = res.completed;
    start = res.makespan + workload_.sync_overhead;
  }
  dlb_total_ = completed ? start : std::numeric_limits<double>::infinity();
}

std::vector<std::pair<std::string, double>>
WaveApplication::execution_term_seconds() const {
  std::vector<std::pair<std::string, double>> out;
  out.emplace_back("powerlaw",
                   task_seconds_ - comm_seconds_ - page_seconds_);
  if (mach_.models_communication()) out.emplace_back("comm", comm_seconds_);
  if (mach_.models_memory()) out.emplace_back("memory", page_seconds_);
  return out;
}

}  // namespace hslb
