// Allocation results: the output of the Solve step and the input to the
// Execute step.
#pragma once

#include <string>
#include <vector>

namespace hslb {

struct TaskAllocation {
  std::string task;
  long long nodes = 0;
  double predicted_seconds = 0.0;  ///< model prediction at `nodes`
};

struct Allocation {
  std::vector<TaskAllocation> tasks;
  /// Objective value under the layout semantics (e.g. predicted makespan
  /// for min-max); what the paper's AMPL script prints as "predicted time".
  double predicted_total = 0.0;

  const TaskAllocation& find(const std::string& task) const;
  bool contains(const std::string& task) const;
  long long total_nodes() const;

  /// Human-readable rendering (component, nodes, predicted seconds).
  std::string str() const;
};

}  // namespace hslb
