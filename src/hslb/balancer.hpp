// Pluggable baseline schedulers: one interface, N balancers, one
// comparison code path.
//
// A Balancer places indivisible real-valued loads onto groups of a node
// graph.  The repo's reports and benches used to compare HSLB against a
// bespoke DLB implementation wired into each substrate; this seam lets any
// report compare the static HSLB placement, the dynamic-queue-equivalent
// LPT baseline, a naive greedy, and a diffusion-based neighbour balancer
// (arXiv:1308.0148: iterative local moves of indivisible loads between
// graph neighbours) through the same `balance()` call.
//
// Balancers here operate on abstract loads (seconds of work per item);
// substrates that simulate execution keep their own end-to-end baselines
// (fmo::run_dlb and friends) and the fuzzer gates those.  This layer is
// for placement-quality comparisons: same loads, same graph, different
// algorithms, shared hslb::Metrics.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "hslb/metrics.hpp"

namespace hslb {

/// Topology the balancer may move load across.  `groups` is the number of
/// load-bearing units; `neighbors[g]` lists the units g may exchange load
/// with directly (used by diffusion; global balancers ignore it).
struct NodeGraph {
  long long groups = 0;
  std::vector<std::vector<long long>> neighbors;

  /// Every group adjacent to every other group.
  static NodeGraph complete(long long groups);
  /// Ring: g <-> (g+1) mod groups.
  static NodeGraph ring(long long groups);
  /// rows x cols torus with 4-neighbour wraparound links.
  static NodeGraph torus2d(long long rows, long long cols);
};

/// Placement produced by a Balancer.
struct BalanceResult {
  /// owner[i] = group assigned to load item i.
  std::vector<long long> owner;
  /// Total load per group under `owner`.
  std::vector<double> group_load;
  /// Number of item moves performed after the initial placement
  /// (0 for single-pass balancers).
  long long moves = 0;
  /// Number of sweeps/rounds an iterative balancer ran.
  long long rounds = 0;

  /// Largest group load (the schedule length if groups run in parallel).
  double makespan() const;
  /// Shared metrics of `group_load` under `makespan()`.
  Metrics metrics() const;
};

/// A load-balancing algorithm for indivisible real-valued loads.
class Balancer {
 public:
  virtual ~Balancer() = default;
  /// Stable identifier ("greedy", "dlb", "hslb-static", "diffusion").
  virtual std::string name() const = 0;
  /// One-line human-readable description.
  virtual std::string description() const = 0;
  /// Place `loads` (one indivisible item per entry, load in seconds) onto
  /// the groups of `graph`.  Deterministic: same inputs, same result.
  virtual BalanceResult balance(const std::vector<double>& loads,
                                const NodeGraph& graph) const = 0;
};

/// All built-in balancers, in a fixed report order.
std::vector<std::unique_ptr<Balancer>> make_balancers();

/// A single balancer by name; throws std::invalid_argument listing the
/// known names when `name` is not one of them.
std::unique_ptr<Balancer> make_balancer(const std::string& name);

}  // namespace hslb
