#include "hslb/objective.hpp"

namespace hslb {

std::string to_string(Objective o) {
  switch (o) {
    case Objective::MinMax: return "min-max";
    case Objective::MaxMin: return "max-min";
    case Objective::MinSum: return "min-sum";
  }
  return "?";
}

}  // namespace hslb
