#include "hslb/objective.hpp"

#include <algorithm>

#include "common/contracts.hpp"

namespace hslb {

double fold_objective(Objective o, std::span<const double> times) {
  HSLB_EXPECTS(!times.empty());
  double acc = o == Objective::MinSum ? 0.0 : times[0];
  for (std::size_t f = 0; f < times.size(); ++f) {
    switch (o) {
      case Objective::MinMax: acc = f == 0 ? times[f] : std::max(acc, times[f]); break;
      case Objective::MaxMin: acc = f == 0 ? times[f] : std::min(acc, times[f]); break;
      case Objective::MinSum: acc += times[f]; break;
    }
  }
  return acc;
}

std::string to_string(Objective o) {
  switch (o) {
    case Objective::MinMax: return "min-max";
    case Objective::MaxMin: return "max-min";
    case Objective::MinSum: return "min-sum";
  }
  return "?";
}

}  // namespace hslb
