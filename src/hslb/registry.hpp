// Substrate registry: name -> factory for hslb::Application.
//
// A *substrate* is a workload family the HSLB pipeline can balance (FMO
// fragments, CESM coupled components, an FMM octree, an AMReX mesh...).
// Each registers a factory that builds a ready-to-run Application from a
// declarative ScenarioSpec, so the CLI, benches, the allocation service,
// and the scenario fuzzer all construct workloads through one seam
// instead of per-command if/else chains.
//
// Adding a substrate is: implement hslb::Application (and optionally
// BaselineReporter), then
//
//   SubstrateRegistry::instance().add(
//       {"mine", "one-line description", {"variant-a", "variant-b"}},
//       [](const ScenarioSpec& spec) { return make_my_application(spec); });
//
// Registration is explicit (call register_builtin_substrates() from
// src/substrates/) rather than static-initializer magic, so static
// linking never silently drops a substrate.
#pragma once

#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "hslb/objective.hpp"
#include "hslb/pipeline.hpp"

namespace hslb {

/// Declarative description of one scenario draw: which substrate/variant,
/// how big, how noisy, and what goes wrong at runtime.  Factories map
/// this onto their own option structs; fields a substrate has no use for
/// are ignored (e.g. CESM sizes itself from the variant, not `tasks`).
struct ScenarioSpec {
  std::string substrate;
  std::string variant;  // empty = substrate default
  /// Workload size knob (fragments / blocks / tree tasks); 0 = default.
  long long tasks = 0;
  /// Machine size in nodes; 0 = substrate default for `tasks`.
  long long nodes = 0;

  /// Seed for workload construction (geometry, tree shape, clustering).
  unsigned long long system_seed = 3;

  // Gather / fit / solve.
  unsigned long long bench_seed = 42;
  double bench_noise_cv = 0.03;
  long long fit_points = 5;
  bool minlp = false;
  Objective objective = Objective::MinMax;

  // Execution.
  double noise_cv = 0.02;
  unsigned long long run_seed = 7;
  double straggler_cv = 0.0;
  long long fail_node = -1;
  double fail_time = 0.0;
  double fail_downtime = std::numeric_limits<double>::infinity();

  // Machine extensions (infinite/zero = off, matching sim::Machine).
  double link_gb_per_s = std::numeric_limits<double>::infinity();
  double memory_gb_per_node = std::numeric_limits<double>::infinity();
  double page_s_per_gb = 0.0;

  /// Adaptive-rebalance policy for the epoch path.
  RebalancePolicy rebalance;

  /// Compact one-line rendering (used in fuzzer counterexample reports).
  std::string str() const;
};

/// Catalogue entry for `hslb substrates` and fuzzer sweeps.
struct SubstrateInfo {
  std::string name;
  std::string description;
  std::vector<std::string> variants;
};

using SubstrateFactory =
    std::function<std::shared_ptr<Application>(const ScenarioSpec&)>;

class SubstrateRegistry {
 public:
  /// The process-wide registry.
  static SubstrateRegistry& instance();

  /// Register (or replace) a substrate.
  void add(SubstrateInfo info, SubstrateFactory factory);

  bool contains(const std::string& name) const;
  /// Catalogue entry, or nullptr when unknown.
  const SubstrateInfo* find(const std::string& name) const;
  /// All registered substrates, sorted by name.
  std::vector<SubstrateInfo> list() const;

  /// Build an Application for `spec`; throws std::invalid_argument
  /// listing the registered names when spec.substrate is unknown.
  std::shared_ptr<Application> make(const ScenarioSpec& spec) const;

 private:
  struct Entry {
    SubstrateInfo info;
    SubstrateFactory factory;
  };
  std::vector<Entry> entries_;
};

/// Optional side-interface for substrates that also run a dynamic
/// baseline during execute(): lets generic tooling (the fuzzer, `hslb
/// run`) compare HSLB against DLB without knowing the substrate.
/// dynamic_cast from the Application pointer to discover it.
class BaselineReporter {
 public:
  virtual ~BaselineReporter() = default;
  /// End-to-end seconds of the HSLB-planned execution.
  virtual double hslb_total_seconds() = 0;
  /// End-to-end seconds of the dynamic (DLB-style) baseline on the same
  /// workload and noise draws.
  virtual double dlb_total_seconds() = 0;
};

}  // namespace hslb
