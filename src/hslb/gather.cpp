#include "hslb/gather.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/contracts.hpp"

namespace hslb {

std::vector<long long> geometric_node_counts(long long min_nodes,
                                             long long max_nodes,
                                             std::size_t points) {
  HSLB_EXPECTS(min_nodes >= 1);
  HSLB_EXPECTS(max_nodes >= min_nodes);
  HSLB_EXPECTS(points >= 2);
  std::set<long long> counts{min_nodes, max_nodes};
  const double lo = std::log(static_cast<double>(min_nodes));
  const double hi = std::log(static_cast<double>(max_nodes));
  for (std::size_t i = 1; i + 1 < points; ++i) {
    const double f = static_cast<double>(i) / static_cast<double>(points - 1);
    counts.insert(static_cast<long long>(
        std::llround(std::exp(lo + f * (hi - lo)))));
  }
  return {counts.begin(), counts.end()};
}

perf::BenchTable gather(const std::vector<std::string>& tasks,
                        const std::vector<long long>& node_counts,
                        const BenchmarkFn& benchmark,
                        const GatherOptions& options) {
  std::vector<std::pair<std::string, std::vector<long long>>> plan;
  plan.reserve(tasks.size());
  for (const auto& t : tasks) plan.emplace_back(t, node_counts);
  return gather(plan, benchmark, options);
}

perf::BenchTable gather(
    const std::vector<std::pair<std::string, std::vector<long long>>>& plan,
    const BenchmarkFn& benchmark, const GatherOptions& options) {
  HSLB_EXPECTS(static_cast<bool>(benchmark));
  HSLB_EXPECTS(options.repetitions >= 1);
  perf::BenchTable table;
  for (const auto& [task, counts] : plan) {
    HSLB_EXPECTS(!counts.empty());
    perf::TaskBench bench{task, {}};
    for (long long n : counts) {
      HSLB_EXPECTS(n >= 1);
      for (std::uint64_t rep = 0; rep < options.repetitions; ++rep) {
        const double seconds = benchmark(task, n, rep);
        HSLB_EXPECTS(seconds > 0.0);
        bench.samples.push_back({static_cast<double>(n), seconds});
      }
    }
    table.tasks.push_back(std::move(bench));
  }
  return table;
}

}  // namespace hslb
