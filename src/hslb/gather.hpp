// Step 1 of HSLB: Gather benchmarking data.
//
// §III-C recommends running "on the minimal number of nodes allowed by
// memory requirements and on the greatest number of nodes possible",
// plus "a few simulations ... in between to capture the curvature", at
// least four points per component. `geometric_node_counts` implements that
// recommendation; `gather` runs the probes and assembles a BenchTable.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "perf/benchdata.hpp"

namespace hslb {

/// Callback that benchmarks one task at one node count and returns seconds.
/// `rep` distinguishes repeated measurements at the same size.
using BenchmarkFn =
    std::function<double(const std::string& task, long long nodes,
                         std::uint64_t rep)>;

struct GatherOptions {
  std::size_t repetitions = 1;  ///< timed runs per (task, node count)
};

/// D node counts spread geometrically over [min_nodes, max_nodes]
/// (endpoints always included; at least 2 points; duplicates removed).
std::vector<long long> geometric_node_counts(long long min_nodes,
                                             long long max_nodes,
                                             std::size_t points);

/// Runs the probes: every task at every node count in `node_counts`.
perf::BenchTable gather(const std::vector<std::string>& tasks,
                        const std::vector<long long>& node_counts,
                        const BenchmarkFn& benchmark,
                        const GatherOptions& options = {});

/// Per-task node lists (e.g. components with different feasible ranges).
perf::BenchTable gather(
    const std::vector<std::pair<std::string, std::vector<long long>>>& plan,
    const BenchmarkFn& benchmark, const GatherOptions& options = {});

}  // namespace hslb
