#include "hslb/controller.hpp"

#include <algorithm>
#include <unordered_map>

#include "common/contracts.hpp"
#include "perf/terms.hpp"

namespace hslb {

namespace {

/// Observations inside the refit window [epoch + 1 - window, epoch].
std::vector<perf::Observed> windowed(const std::vector<perf::Observed>& all,
                                     std::size_t epoch, std::size_t window) {
  const std::size_t oldest = epoch + 1 >= window ? epoch + 1 - window : 0;
  std::vector<perf::Observed> out;
  for (const auto& o : all)
    if (o.epoch >= oldest && o.epoch <= epoch) out.push_back(o);
  return out;
}

bool same_allocation(const Allocation& a, const Allocation& b) {
  if (a.tasks.size() != b.tasks.size()) return false;
  for (std::size_t i = 0; i < a.tasks.size(); ++i) {
    if (a.tasks[i].task != b.tasks[i].task ||
        a.tasks[i].nodes != b.tasks[i].nodes)
      return false;
  }
  return true;
}

}  // namespace

Controller::Controller(RebalancePolicy policy, perf::FitOptions fit_options,
                       perf::CostModelSpec spec)
    : policy_(std::move(policy)),
      fit_options_(std::move(fit_options)),
      spec_(std::move(spec)) {
  HSLB_EXPECTS(policy_.refit_window >= 1);
  HSLB_EXPECTS(policy_.observation_weight >= 1.0);
  if (spec_.empty()) spec_ = {perf::power_law_term()};
}

AdaptiveResult Controller::run(
    Application& app, const perf::BenchTable& bench,
    const std::vector<std::pair<std::string, perf::FitResult>>& fits,
    const SolveOutcome& solution) const {
  AdaptiveResult out;
  out.solution = solution;
  out.fits = fits;

  // Gathered samples by task name: the base every refit folds observed
  // durations into.
  std::unordered_map<std::string, const perf::SampleSet*> gathered;
  for (const auto& t : bench.tasks) gathered.emplace(t.task, &t.samples);

  app.begin_epochs(out.solution);

  std::vector<perf::Observed> observations;
  std::size_t next_allowed = policy_.min_epoch_gap;  // hysteresis gate
  for (std::size_t epoch = 0;; ++epoch) {
    // Backstop against an application that never reports done; any real
    // run is orders of magnitude below this.
    HSLB_ASSERT(epoch < 1000000);
    EpochOutcome eo = app.execute_epoch(epoch);
    ++out.epochs;
    for (auto& o : eo.observations) {
      o.epoch = epoch;
      observations.push_back(std::move(o));
    }
    if (eo.done) break;

    // -- Monitor -------------------------------------------------------------
    const bool monitored =
        policy_.max_epochs == 0 || epoch < policy_.max_epochs;
    const auto window = windowed(observations, epoch, policy_.refit_window);
    double drift = 0.0;
    for (const auto& [task, fit] : out.fits)
      drift = std::max(drift, perf::prediction_drift(fit.cost, window, task));
    out.max_drift = std::max(out.max_drift, drift);

    const bool failure = eo.failure_detected;
    bool trip = failure;
    if (!trip && monitored && epoch + 1 >= next_allowed) {
      trip = eo.imbalance > policy_.imbalance_threshold ||
             drift > policy_.drift_threshold;
    }
    if (!trip) continue;
    ++out.triggers;

    // -- Refit ---------------------------------------------------------------
    // Tasks with fresh observations are refitted warm from their previous
    // parameters; the rest keep their models, so an isolated straggler
    // only perturbs the fragments it actually slowed.
    auto new_fits = out.fits;
    bool refitted = false;
    for (auto& [task, fit] : new_fits) {
      const bool has_obs =
          std::any_of(window.begin(), window.end(),
                      [&task = task](const perf::Observed& o) {
                        return o.task == task;
                      });
      if (!has_obs) continue;
      const auto it = gathered.find(task);
      HSLB_ASSERT(it != gathered.end());
      const perf::SampleSet samples = perf::fold_observations(
          *it->second, window, task, epoch, policy_.refit_window,
          policy_.observation_weight);
      fit = perf::refit_cost(samples, spec_, fit, fit_options_);
      refitted = true;
    }
    if (refitted) ++out.refits;
    out.fits = std::move(new_fits);

    // -- Warm re-solve + accept test -----------------------------------------
    const ResolveOutcome proposal = app.resolve(out.fits, out.solution);
    const double gain =
        proposal.incumbent_predicted - proposal.solution.predicted_total;
    bool accept = failure;
    if (!accept && gain > 0.0 &&
        !same_allocation(proposal.solution.allocation,
                         out.solution.allocation)) {
      accept = true;
      if (policy_.migration_aware) {
        const double stall =
            app.migration_cost(out.solution, proposal.solution);
        accept = gain * std::max(1.0, eo.epochs_remaining) > stall;
      }
    }
    if (!accept) continue;

    // -- Migrate -------------------------------------------------------------
    out.migration_seconds += app.apply_allocation(proposal.solution);
    out.solution = proposal.solution;
    ++out.rebalances;
    next_allowed = epoch + 1 + policy_.min_epoch_gap;
  }

  out.actual_total = app.finish_epochs();
  return out;
}

}  // namespace hslb
