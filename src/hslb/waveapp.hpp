// Generic wave-synchronized substrate engine.
//
// Many HPC workloads reduce, for allocation purposes, to the same shape
// FMO's SCC loop has: W waves, each running every task concurrently on its
// own node block, closed by a synchronization barrier.  An FMM tree
// traversal (one wave per timestep over per-subtree tasks), an AMReX
// mesh+particle step (per-block advance + regrid barrier), and many bulk-
// synchronous codes all fit.  WaveApplication implements the full
// hslb::Application contract — Gather probes, Fit, budgeted Solve (greedy
// or MINLP), simulated Execute with noise/straggler/fail-stop
// perturbations, and the PR 8 epoch hooks (one wave per epoch) — over a
// declarative task list, so a new substrate only has to *describe* its
// tasks (src/fmm, src/amrex) instead of re-implementing the engine.
//
// Determinism contract: probe noise is derived per (task index, node
// count, repetition); execution noise is keyed per (wave phase, task,
// attempt) by sim::Perturbation.  Results are identical for every thread
// count, and an untriggered adaptive run is bit-identical to the static
// one because execute() *is* the epoch loop.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <unordered_map>
#include <vector>

#include "hslb/budget.hpp"
#include "hslb/objective.hpp"
#include "hslb/pipeline.hpp"
#include "hslb/registry.hpp"
#include "minlp/bnb.hpp"
#include "perf/fit.hpp"
#include "perf/model.hpp"
#include "sim/machine.hpp"
#include "sim/runtime.hpp"

namespace hslb {

/// One allocatable task of a wave workload.
struct WaveTask {
  std::string name;
  /// Ground-truth scaling model the simulated probes/execution sample.
  perf::Model truth;
  /// Working set (GB) spread across the task's node block: checked/charged
  /// by the machine when it models memory, and the task's migration volume
  /// when a rebalance moves its block.
  double memory_gb = 0.0;
};

/// A workload: T tasks x W waves, each wave closed by a sync barrier.
struct WaveWorkload {
  std::string name;
  std::vector<WaveTask> tasks;
  long long waves = 8;
  double sync_overhead = 0.05;  ///< barrier seconds per wave
};

struct WaveOptions {
  // Gather / fit.
  long long fit_points = 5;
  std::size_t repetitions = 1;
  double bench_noise_cv = 0.03;
  std::uint64_t bench_seed = 42;
  perf::FitOptions fit;

  // Solve.
  Objective objective = Objective::MinMax;
  bool solve_with_minlp = false;
  minlp::BnbOptions bnb;

  // Execute.
  double noise_cv = 0.02;
  std::uint64_t seed = 7;
  /// Machine override; a zero-node machine means "build a plain
  /// compute-only machine of the allocation's size".
  sim::Machine machine;
  double straggler_cv = 0.0;
  long long fail_node = -1;
  double fail_time = 0.0;
  double fail_downtime = std::numeric_limits<double>::infinity();
  /// DLB baseline group count; 0 = one group per task.
  std::size_t dlb_groups = 0;
};

/// The engine: a full Application (+ DLB BaselineReporter) over a
/// WaveWorkload.  See the header comment for the execution model.
class WaveApplication final : public Application, public BaselineReporter {
 public:
  WaveApplication(WaveWorkload workload, long long nodes, WaveOptions options);

  // -- Application ----------------------------------------------------------
  std::string name() const override;
  GatherPlan gather_plan() override;
  double probe(const std::string& task, long long n,
               std::uint64_t rep) override;
  perf::FitOptions fit_options() const override { return options_.fit; }
  SolveOutcome solve(const std::vector<std::pair<std::string, perf::FitResult>>&
                         fits) override;
  double execute(const SolveOutcome& solution) override;
  sim::Machine machine() const override { return mach_; }
  const sim::Trace* execution_trace() const override { return &trace_; }
  bool execution_completed() const override { return completed_; }
  std::vector<std::pair<std::string, double>> execution_term_seconds()
      const override;

  // -- Epoch hooks (one wave per epoch) -------------------------------------
  bool supports_epochs() const override { return true; }
  void begin_epochs(const SolveOutcome& solution) override;
  EpochOutcome execute_epoch(std::size_t epoch) override;
  ResolveOutcome resolve(
      const std::vector<std::pair<std::string, perf::FitResult>>& fits,
      const SolveOutcome& incumbent) override;
  double migration_cost(const SolveOutcome& from,
                        const SolveOutcome& to) const override;
  double apply_allocation(const SolveOutcome& solution) override;
  double finish_epochs() override;

  // -- BaselineReporter -----------------------------------------------------
  double hslb_total_seconds() override { return hslb_total_; }
  double dlb_total_seconds() override;

  const WaveWorkload& workload() const { return workload_; }

 private:
  std::vector<BudgetTask> budget_tasks(
      const std::vector<std::pair<std::string, perf::FitResult>>& fits,
      long long max_nodes) const;
  double noisy(double true_seconds, std::size_t stream, long long n,
               std::uint64_t rep) const;
  /// Nodes currently allocatable (total, clipped to the surviving segment).
  long long budget() const;
  sim::NodeSet barrier_set() const;
  void install(const Allocation& allocation);
  /// Working-set GB moved if `next` were installed now.
  double migration_volume(const Allocation& next) const;
  void reset_run_state();
  void run_dlb_baseline();

  WaveWorkload workload_;
  long long nodes_ = 0;
  WaveOptions options_;
  sim::Machine mach_;
  sim::Perturbation perturb_;
  long long hi_ = 0;
  std::vector<long long> counts_;
  std::unordered_map<std::string, std::size_t> index_of_;

  // Installed layout: contiguous task blocks from the segment start.
  std::vector<long long> alloc_nodes_;
  std::vector<sim::NodeSet> blocks_;
  bool installed_ = false;

  // Run state (reset by begin_epochs).
  std::size_t seg_first_ = 0;
  std::size_t seg_count_ = 0;
  bool failed_ = false;
  long long wave_ = 0;
  bool done_ = false;
  std::vector<char> pending_;
  double clock_ = 0.0;
  bool completed_ = true;
  sim::Trace trace_;
  std::vector<double> task_busy_;
  double task_seconds_ = 0.0;
  double comm_seconds_ = 0.0;
  double page_seconds_ = 0.0;
  std::size_t restarts_ = 0;

  double hslb_total_ = 0.0;
  bool dlb_ran_ = false;
  double dlb_total_ = 0.0;

  // Warm-resolve state (MINLP path).
  std::vector<double> last_x_;
  std::vector<minlp::Cut> last_pool_;
  std::vector<double> last_fit_params_;
};

}  // namespace hslb
