// The closed-loop rebalancing controller: runs an epoch-capable
// Application (pipeline.hpp's adaptive hooks) as
//
//   repeat: execute epoch -> monitor (imbalance / drift / failure)
//           -> refit (fold observed durations, warm from previous params)
//           -> warm re-solve (seeded from the incumbent allocation)
//           -> accept test (gain x remaining epochs vs migration stall)
//           -> migrate
//
// until the application reports done. The static pipeline is the
// degenerate case: with no trigger the controller executes every epoch
// under the initial allocation and the run is bit-identical to the
// one-shot execute() path.
//
// Every decision is a pure function of the epoch outcomes and the policy —
// no wall-clock, no shared mutable state — so the rebalance sequence is
// identical for every worker/solver thread count.
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "hslb/pipeline.hpp"
#include "perf/fit.hpp"

namespace hslb {

/// What a closed-loop run did, for reports and benches.
struct AdaptiveResult {
  std::size_t epochs = 0;      ///< epochs executed
  std::size_t triggers = 0;    ///< monitor trips (including rejected ones)
  std::size_t rebalances = 0;  ///< accepted mid-run reallocations
  std::size_t refits = 0;      ///< refit rounds performed
  double migration_seconds = 0.0;  ///< total stall charged by migrations
  double actual_total = 0.0;       ///< Application::finish_epochs() metric
  double max_drift = 0.0;          ///< worst windowed prediction drift seen
  SolveOutcome solution;           ///< allocation in force at the end
  /// Models in force at the end (refitted when any trigger fired).
  std::vector<std::pair<std::string, perf::FitResult>> fits;
};

/// Drives the monitor -> refit -> re-solve -> migrate loop. Stateless
/// apart from its policy; run() may be called repeatedly.
class Controller {
 public:
  /// `spec` must be the spec `fits` were fitted with (empty = the classic
  /// power law, matching Application::fit_spec's default).
  Controller(RebalancePolicy policy, perf::FitOptions fit_options,
             perf::CostModelSpec spec = {});

  /// Runs `app` epoch by epoch from the initial Solve outputs. `bench` and
  /// `fits` are the Gather/Fit stage outputs (refits fold observations into
  /// the gathered samples); `solution` is the initial allocation.
  AdaptiveResult run(Application& app, const perf::BenchTable& bench,
                     const std::vector<std::pair<std::string, perf::FitResult>>&
                         fits,
                     const SolveOutcome& solution) const;

 private:
  RebalancePolicy policy_;
  perf::FitOptions fit_options_;
  perf::CostModelSpec spec_;
};

}  // namespace hslb
