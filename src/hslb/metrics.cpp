#include "hslb/metrics.hpp"

#include <algorithm>
#include <numeric>

#include "common/stats.hpp"
#include "common/strings.hpp"
#include "sim/trace.hpp"

namespace hslb {

namespace {

/// sigma over *all* units: (stddev / mean) x 100, 0 when degenerate.
double sigma_of(const std::vector<double>& busy) {
  if (busy.size() < 2) return 0.0;
  const double mean = stats::mean(busy);
  if (mean <= 0.0) return 0.0;
  return stats::stddev(busy) / mean * 100.0;
}

/// lambda over *all* units: (max/mean - 1) x 100, 0 when degenerate.
double lambda_of(const std::vector<double>& busy) {
  if (busy.empty()) return 0.0;
  const double max = *std::max_element(busy.begin(), busy.end());
  const double mean =
      std::accumulate(busy.begin(), busy.end(), 0.0) /
      static_cast<double>(busy.size());
  if (mean <= 0.0) return 0.0;
  return (max / mean - 1.0) * 100.0;
}

/// Classic imbalance over units that were ever busy.
double busy_imbalance_of(const std::vector<double>& busy) {
  std::vector<double> used;
  for (double b : busy)
    if (b > 0.0) used.push_back(b);
  if (used.empty()) return 0.0;
  return stats::imbalance(used);
}

}  // namespace

Metrics Metrics::from_loads(const std::vector<double>& unit_busy,
                            double makespan) {
  Metrics m;
  m.makespan = makespan;
  m.busy_unit_seconds =
      std::accumulate(unit_busy.begin(), unit_busy.end(), 0.0);
  m.efficiency =
      unit_busy.empty() || makespan <= 0.0
          ? 1.0
          : m.busy_unit_seconds /
                (makespan * static_cast<double>(unit_busy.size()));
  m.imbalance = busy_imbalance_of(unit_busy);
  m.percent_imbalance = lambda_of(unit_busy);
  m.sigma_percent = sigma_of(unit_busy);
  return m;
}

Metrics Metrics::from_trace(const sim::Trace& trace) {
  // The headline fields delegate to the trace's own accessors so existing
  // reports stay bit-identical through the Metrics refactor; only
  // sigma_percent is computed here (the trace never reported it).
  Metrics m;
  m.makespan = trace.makespan();
  m.busy_unit_seconds = trace.busy_node_seconds();
  m.efficiency = trace.efficiency();
  m.imbalance = trace.imbalance();
  m.percent_imbalance = trace.percent_imbalance();
  m.sigma_percent = sigma_of(trace.node_busy());
  return m;
}

std::string Metrics::str() const {
  return strings::format(
      "makespan %.3f s, busy %.3f unit-s, efficiency %.3f, imbalance %.3f, "
      "lambda %.1f%%, sigma %.1f%%",
      makespan, busy_unit_seconds, efficiency, imbalance, percent_imbalance,
      sigma_percent);
}

}  // namespace hslb
