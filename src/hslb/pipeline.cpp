#include "hslb/pipeline.hpp"

#include <chrono>
#include <cmath>

#include "common/contracts.hpp"
#include "common/parallel.hpp"
#include "common/strings.hpp"
#include "hslb/controller.hpp"

namespace hslb {

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

double PipelineReport::total_seconds() const {
  return gather_seconds + fit_seconds + solve_seconds + execute_seconds;
}

double PipelineReport::min_r2() const {
  double m = 1.0;
  for (const auto& f : fits) m = std::min(m, f.r2);
  return m;
}

double PipelineReport::mean_r2() const {
  if (fits.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& f : fits) sum += f.r2;
  return sum / static_cast<double>(fits.size());
}

double PipelineReport::prediction_error() const {
  if (predicted_total == 0.0) return 0.0;
  return (actual_total - predicted_total) / predicted_total;
}

double PipelineReport::term_predicted(const std::string& term) const {
  for (const auto& t : terms)
    if (t.term == term) return t.predicted_seconds;
  return 0.0;
}

double PipelineReport::term_actual(const std::string& term) const {
  for (const auto& t : terms)
    if (t.term == term) return t.actual_seconds;
  return 0.0;
}

std::string PipelineReport::str() const {
  std::string out = strings::format(
      "pipeline report — %s (%zu thread%s)\n", application.c_str(), threads,
      threads == 1 ? "" : "s");
  out += strings::format("  gather   %8.3f s  (%zu probes)\n", gather_seconds,
                         probes);
  out += strings::format(
      "  fit      %8.3f s  (%zu tasks, R^2 min %.4f mean %.4f)\n", fit_seconds,
      fits.size(), min_r2(), mean_r2());
  out += strings::format(
      "  solve    %8.3f s  (%s: %zu nodes, %zu cuts, gap %g (rel %g), "
      "%.3f s)\n",
      solve_seconds, solver.status.c_str(), solver.nodes, solver.cuts,
      solver.gap, solver.rel_gap, solver.seconds);
  if (solver.lp_solves > 0) {
    out += strings::format(
        "           solver: %zu thread%s, %zu waves, %zu LP solves "
        "(%zu warm), %zu pivots\n",
        solver.threads, solver.threads == 1 ? "" : "s", solver.waves,
        solver.lp_solves, solver.warm_solves, solver.lp_pivots);
    out += strings::format(
        "           sparse: kernel flops %.1fx down, eta compression %.1fx "
        "(%zu nz), %zu refactors, basis %zu nz -> LU %zu nz\n",
        solver.flop_reduction, solver.eta_compression, solver.eta_nnz,
        solver.refactorizations, solver.basis_nnz, solver.lu_fill);
    out += strings::format(
        "           basis: %zu FT updates (+%zu nz), refactor triggers "
        "%zu fill / %zu drift / %zu interval; %zu dual / %zu phase-1 pivots, "
        "%zu warm re-solves dual-only\n",
        solver.ft_updates, solver.ft_fill_nnz, solver.refactor_fill_hits,
        solver.refactor_drift_hits, solver.refactor_interval_hits,
        solver.dual_pivots, solver.phase1_pivots, solver.dual_phase1_avoided);
    out += strings::format(
        "           presolve: %zu rows / %zu cols removed, %zu bounds "
        "tightened, %zu nodes pruned; cuts %zu retired / %zu reactivated\n",
        solver.presolve_rows_removed, solver.presolve_cols_removed,
        solver.bounds_tightened, solver.nodes_propagated_infeasible,
        solver.cuts_retired, solver.cuts_reactivated);
  }
  out += strings::format("  execute  %8.3f s\n", execute_seconds);
  if (!machine.empty())
    out += strings::format("           machine: %s\n", machine.c_str());
  if (exec_events > 0) {
    out += strings::format(
        "           runtime: makespan %.3f s, %zu events, occupancy %.1f%% "
        "(imbalance %.3f), %zu restart%s%s\n",
        exec_makespan, exec_events, 100.0 * exec_efficiency, exec_imbalance,
        exec_restarts, exec_restarts == 1 ? "" : "s",
        exec_completed ? "" : ", INCOMPLETE");
  }
  // Printed only when the closed loop actually acted, so a static run and
  // an untriggered adaptive run render byte-identically.
  if (rebalances > 0 || migration_seconds > 0.0) {
    out += strings::format(
        "           adaptive: %zu epochs, %zu rebalance%s, migration "
        "%.3f s, percent imbalance %.1f%%\n",
        epochs, rebalances, rebalances == 1 ? "" : "s", migration_seconds,
        exec_percent_imbalance);
  }
  if (!terms.empty()) {
    out += "           terms (task-seconds):";
    for (const auto& t : terms) {
      out += strings::format(" %s %.3f/%.3f", t.term.c_str(),
                             t.predicted_seconds, t.actual_seconds);
    }
    out += " (predicted/actual)\n";
  }
  out += strings::format(
      "  predicted %.3f s, actual %.3f s (error %+.1f%%)\n", predicted_total,
      actual_total, 100.0 * prediction_error());
  return out;
}

std::string PipelineReport::csv_header() {
  return "application,threads,gather_s,fit_s,solve_s,execute_s,probes,tasks,"
         "min_r2,mean_r2,solver_status,solver_nodes,solver_cuts,solver_gap,"
         "solver_rel_gap,solver_threads,solver_waves,solver_lp_solves,"
         "solver_warm_solves,solver_lp_pivots,solver_eta_nnz,"
         "solver_eta_compression,solver_flop_reduction,"
         "solver_refactorizations,solver_basis_nnz,"
         "solver_lu_fill,solver_ft_updates,solver_ft_fill_nnz,"
         "solver_refactor_fill_hits,solver_refactor_drift_hits,"
         "solver_refactor_interval_hits,solver_dual_pivots,"
         "solver_phase1_pivots,solver_dual_phase1_avoided,"
         "solver_presolve_rows,solver_presolve_cols,"
         "solver_bounds_tightened,solver_nodes_propagated_infeasible,"
         "solver_cuts_retired,solver_cuts_reactivated,predicted_s,actual_s,"
         "machine,exec_makespan_s,exec_busy_node_s,exec_efficiency,"
         "exec_imbalance,exec_events,exec_restarts,exec_completed,"
         "comm_pred_s,comm_actual_s,mem_pred_s,mem_actual_s,"
         "exec_percent_imbalance,epochs,rebalances,migration_s";
}

std::string PipelineReport::csv_row() const {
  std::string row = strings::format(
      "%s,%zu,%.6f,%.6f,%.6f,%.6f,%zu,%zu,%.6f,%.6f,%s,%zu,%zu,%g,%g,%zu,%zu,"
      "%zu,%zu,%zu,%zu,%.3f,%.3f,%zu,%zu,%zu,%zu,%zu,%zu,%zu,%zu,%zu,%zu,%zu,"
      "%zu,%zu,%zu,%zu,%zu,%zu,%.6f,%.6f",
      application.c_str(), threads, gather_seconds, fit_seconds, solve_seconds,
      execute_seconds, probes, fits.size(), min_r2(), mean_r2(),
      solver.status.c_str(), solver.nodes, solver.cuts, solver.gap,
      solver.rel_gap, solver.threads, solver.waves, solver.lp_solves,
      solver.warm_solves, solver.lp_pivots, solver.eta_nnz,
      solver.eta_compression, solver.flop_reduction, solver.refactorizations,
      solver.basis_nnz, solver.lu_fill, solver.ft_updates, solver.ft_fill_nnz,
      solver.refactor_fill_hits, solver.refactor_drift_hits,
      solver.refactor_interval_hits, solver.dual_pivots, solver.phase1_pivots,
      solver.dual_phase1_avoided, solver.presolve_rows_removed,
      solver.presolve_cols_removed, solver.bounds_tightened,
      solver.nodes_propagated_infeasible, solver.cuts_retired,
      solver.cuts_reactivated, predicted_total, actual_total);
  HSLB_ASSERT(machine.find(',') == std::string::npos);
  row += strings::format(",%s,%.6f,%.6f,%.6f,%.6f,%zu,%zu,%d", machine.c_str(),
                         exec_makespan, exec_busy_node_seconds, exec_efficiency,
                         exec_imbalance, exec_events, exec_restarts,
                         exec_completed ? 1 : 0);
  row += strings::format(",%.6f,%.6f,%.6f,%.6f", term_predicted("comm"),
                         term_actual("comm"), term_predicted("memory"),
                         term_actual("memory"));
  row += strings::format(",%.6f,%zu,%zu,%.6f", exec_percent_imbalance, epochs,
                         rebalances, migration_seconds);
  return row;
}

Pipeline::Pipeline(PipelineOptions options) : options_(std::move(options)) {
  HSLB_EXPECTS(options_.gather_repetitions >= 1);
}

PipelineRun Pipeline::run(Application& app) const {
  ThreadPool pool(options_.threads);
  return run(app, pool);
}

PipelineRun Pipeline::run(Application& app, ThreadPool& pool) const {
  PipelineRun out;
  out.report.application = app.name();
  out.report.threads = pool.size();

  // -- Step 1: Gather --------------------------------------------------------
  auto t0 = std::chrono::steady_clock::now();
  const GatherPlan plan = app.gather_plan();
  HSLB_EXPECTS(!plan.empty());
  out.bench.tasks.resize(plan.size());
  const std::size_t reps = options_.gather_repetitions;
  // Task-level parallelism: each task's probes run serially in plan order
  // inside one pool job; results land at the task's index, so the table is
  // identical for every thread count.
  pool.parallel_for(plan.size(), [&](std::size_t t) {
    const auto& [task, counts] = plan[t];
    HSLB_EXPECTS(!counts.empty());
    perf::TaskBench bench{task, {}};
    bench.samples.reserve(counts.size() * reps);
    for (long long n : counts) {
      HSLB_EXPECTS(n >= 1);
      for (std::uint64_t rep = 0; rep < reps; ++rep) {
        const double seconds = app.probe(task, n, rep);
        HSLB_EXPECTS(seconds > 0.0);
        bench.samples.push_back({static_cast<double>(n), seconds});
      }
    }
    out.bench.tasks[t] = std::move(bench);
  });
  for (const auto& t : out.bench.tasks) out.report.probes += t.samples.size();
  out.report.gather_seconds = seconds_since(t0);

  // -- Step 2: Fit -----------------------------------------------------------
  t0 = std::chrono::steady_clock::now();
  perf::FitOptions fit_opt = app.fit_options();
  fit_opt.threads = pool.size();
  out.fits = perf::fit_all(out.bench, fit_opt, &pool, app.fit_spec());
  for (const auto& [task, fit] : out.fits)
    out.report.fits.push_back({task, fit.r2, fit.converged});
  out.report.fit_seconds = seconds_since(t0);

  // -- Step 3: Solve ---------------------------------------------------------
  t0 = std::chrono::steady_clock::now();
  out.solution = app.solve(out.fits);
  if (out.solution.predicted_total == 0.0)
    out.solution.predicted_total = out.solution.allocation.predicted_total;
  out.report.solver = out.solution.solver;
  out.report.predicted_total = out.solution.predicted_total;
  out.report.solve_seconds = seconds_since(t0);

  // -- Step 4: Execute -------------------------------------------------------
  // The adaptive path routes execution through the closed-loop controller;
  // one-shot execute() is the degenerate no-rebalance case of the same
  // machinery, and an adaptive run whose monitor never trips produces a
  // byte-identical report.
  t0 = std::chrono::steady_clock::now();
  if (options_.rebalance.adaptive && app.supports_epochs()) {
    const Controller controller(options_.rebalance, fit_opt, app.fit_spec());
    const AdaptiveResult adaptive =
        controller.run(app, out.bench, out.fits, out.solution);
    out.actual_total = adaptive.actual_total;
    out.report.rebalances = adaptive.rebalances;
    out.report.epochs = adaptive.rebalances + 1;
    out.report.migration_seconds = adaptive.migration_seconds;
  } else {
    out.actual_total = app.execute(out.solution);
  }
  out.report.actual_total = out.actual_total;
  out.report.execute_seconds = seconds_since(t0);

  // Execution-runtime observability: where the run was placed and what the
  // trace says about it.
  const sim::Machine machine = app.machine();
  if (machine.nodes > 0) {
    out.report.machine =
        strings::format("%s (%zu nodes x %zu cores)", machine.name.c_str(),
                        machine.nodes, machine.cores_per_node);
  }
  if (const sim::Trace* trace = app.execution_trace()) {
    out.trace = *trace;
    // One shared metric definition: the report's exec_* scalars are copies
    // of the Metrics members (bit-identical to the old per-field reads —
    // from_trace delegates to the trace's own accessors).
    out.report.exec = Metrics::from_trace(*trace);
    out.report.exec_makespan = out.report.exec.makespan;
    out.report.exec_busy_node_seconds = out.report.exec.busy_unit_seconds;
    out.report.exec_efficiency = out.report.exec.efficiency;
    out.report.exec_imbalance = out.report.exec.imbalance;
    out.report.exec_percent_imbalance = out.report.exec.percent_imbalance;
    out.report.exec_events = trace->events.size();
    for (const auto& e : trace->events)
      if (e.aborted) ++out.report.exec_restarts;
  }
  out.report.exec_completed = app.execution_completed();

  // Term-wise breakdown: Solve's predictions merged with Execute's actuals
  // by term name (actual-only terms get a zero-prediction row, so model
  // blind spots show up instead of vanishing).
  out.report.terms = out.solution.term_predictions;
  for (const auto& [term, seconds] : app.execution_term_seconds()) {
    bool merged = false;
    for (auto& row : out.report.terms) {
      if (row.term == term) {
        row.actual_seconds = seconds;
        merged = true;
        break;
      }
    }
    if (!merged) out.report.terms.push_back({term, 0.0, seconds});
  }

  return out;
}

}  // namespace hslb
