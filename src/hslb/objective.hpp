// The three candidate decision-making objectives of §III-D:
//
//   (1) min-max: minimize the maximum component time (used in both the FMO
//       and CESM papers — performed best),
//   (2) max-min: maximize the minimum component time (slightly worse),
//   (3) min-sum: minimize the sum of component times (much worse: ignores
//       the concurrent structure entirely).
#pragma once

#include <span>
#include <string>

namespace hslb {

enum class Objective { MinMax, MaxMin, MinSum };

std::string to_string(Objective o);

/// Folds per-task times into the scalar objective value: max, min, or sum.
/// The accumulation order matches the original inline loops bit for bit
/// (min-sum starts from 0.0, the others from the first element).
double fold_objective(Objective o, std::span<const double> times);

}  // namespace hslb
