// The substrate-agnostic four-step HSLB engine (§III-F; §V's "black box"):
//
//   Gather -> Fit -> Solve -> Execute
//
// Any application plugs in via the Application interface — a benchmark
// plan, a probe function, a problem builder (Solve), and an executor — and
// the engine runs the four steps, parallelizing the embarrassingly
// parallel Gather and Fit stages over a fixed-size thread pool, and
// returns a PipelineReport with per-stage wall time, per-task fit R²,
// solver statistics, and the predicted-vs-actual delta.
//
// Determinism contract: probe() must derive any randomness from its
// (task, nodes, rep) arguments (see hslb::derive_seed), never from shared
// mutable state, so allocations are identical for every thread count.
// Both bundled substrates (fmo::run_pipeline, cesm::run_pipeline) and
// examples/custom_application.cpp are built on this engine.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "hslb/allocation.hpp"
#include "hslb/gather.hpp"
#include "hslb/metrics.hpp"
#include "perf/fit.hpp"
#include "sim/machine.hpp"
#include "sim/trace.hpp"

namespace hslb {

/// Per-task benchmark node counts, in the order tasks are fitted/reported.
using GatherPlan = std::vector<std::pair<std::string, std::vector<long long>>>;

/// Solver diagnostics surfaced in the report. The branch-and-bound path
/// fills node/cut counts and the bound gap; the closed-form greedy solvers
/// report zeros with their own status string.
struct SolverStats {
  std::string status = "optimal";
  std::size_t nodes = 0;  ///< B&B nodes explored
  std::size_t cuts = 0;   ///< outer-approximation cuts added
  double gap = 0.0;       ///< incumbent-vs-bound gap (0 = proven optimal)
  double rel_gap = 0.0;   ///< gap / max(1, |objective|)
  double seconds = 0.0;   ///< solver-internal wall time
  std::size_t threads = 1;     ///< solver_threads the tree search ran with
  std::size_t lp_solves = 0;   ///< LP relaxations solved
  std::size_t lp_pivots = 0;   ///< simplex pivots across all LP solves
  std::size_t warm_solves = 0; ///< LP solves that reused a prior basis
  std::size_t waves = 0;       ///< synchronized B&B node waves
  // Sparse-kernel accounting, summed over every LP solve of the run.
  // eta_compression is the storage view (dense-equivalent eta entries per
  // stored nonzero); flop_reduction is the work view (dense FTRAN/BTRAN
  // flops per unit of work the sparse kernels actually performed).
  std::size_t eta_nnz = 0;           ///< stored eta nonzeros across pivots
  std::size_t eta_dense_nnz = 0;     ///< dense-equivalent eta entries
  double eta_compression = 1.0;      ///< eta_dense_nnz / max(1, eta_nnz)
  double flop_reduction = 1.0;       ///< dense / sparse kernel work ratio
  std::size_t refactorizations = 0;  ///< basis factorizations performed
  std::size_t basis_nnz = 0;         ///< last factored basis nonzeros
  std::size_t lu_fill = 0;           ///< its L+U factor nonzeros
  // Forrest-Tomlin / dual-simplex accounting, summed over every LP solve.
  std::size_t ft_updates = 0;        ///< FT column replacements applied
  std::size_t ft_fill_nnz = 0;       ///< factor nonzeros those updates added
  std::size_t refactor_interval_hits = 0;  ///< interval-backstop refactors
  std::size_t refactor_fill_hits = 0;      ///< fill-ratio-trigger refactors
  std::size_t refactor_drift_hits = 0;     ///< drift/instability refactors
  std::size_t dual_pivots = 0;       ///< pivots made by the dual simplex
  std::size_t phase1_pivots = 0;     ///< pivots made by primal phase 1
  std::size_t dual_phase1_avoided = 0;  ///< warm re-solves with no phase 1
  // Presolve / propagation / cut-lifecycle accounting.
  std::size_t presolve_rows_removed = 0;  ///< LP presolve rows, all solves
  std::size_t presolve_cols_removed = 0;  ///< LP presolve columns, all solves
  std::size_t bounds_tightened = 0;       ///< node domain-propagation hits
  std::size_t nodes_propagated_infeasible = 0;  ///< nodes pruned pre-LP
  std::size_t cuts_retired = 0;           ///< pool cuts aged out of node LPs
  std::size_t cuts_reactivated = 0;       ///< retired cuts pulled back
};

/// Predicted-vs-actual seconds attributed to one cost term (powerlaw /
/// compute / comm / memory / ...). Semantics are task-seconds summed over
/// the allocation — work volume, not makespan — so the comparison is
/// placement-independent.
struct TermReport {
  std::string term;
  double predicted_seconds = 0.0;
  double actual_seconds = 0.0;
};

/// What the Solve step hands to the Execute step.
struct SolveOutcome {
  Allocation allocation;
  /// Predicted end-to-end metric the actual run is compared against
  /// (defaults to allocation.predicted_total when left at 0).
  double predicted_total = 0.0;
  SolverStats solver;
  /// Term-wise prediction breakdown (empty = model not term-attributed).
  /// Execute-side actuals are merged in by Pipeline::run.
  std::vector<TermReport> term_predictions;
};

/// What one execution epoch reported back to the closed-loop controller
/// (hslb::Controller): progress, the monitor signals, and the observed
/// durations the refit folds into the models.
struct EpochOutcome {
  bool done = false;  ///< the run finished; no epochs remain
  /// A permanent node failure wedged the epoch: the controller must
  /// reallocate over the surviving nodes (bypasses hysteresis and the
  /// migration-aware accept test) and the application re-runs the epoch.
  bool failure_detected = false;
  double epoch_seconds = 0.0;  ///< wall time this epoch added to the run clock
  /// Busy-time imbalance across groups this epoch (max/mean - 1), the
  /// monitor's load signal.
  double imbalance = 0.0;
  /// Predicted epochs still to run — scales the per-epoch gain in the
  /// migration-aware accept test.
  double epochs_remaining = 0.0;
  /// Durations observed this epoch: (task, nodes, seconds). The controller
  /// stamps the epoch index and folds them into the refit window.
  std::vector<perf::Observed> observations;
};

/// What a warm re-solve proposes to the controller.
struct ResolveOutcome {
  SolveOutcome solution;  ///< proposed allocation from the warm re-solve
  /// The *incumbent* allocation's predicted per-epoch time under the same
  /// refitted models — the baseline the proposal's predicted_total is
  /// compared against in the accept test.
  double incumbent_predicted = 0.0;
};

/// Fit quality of one task (report row).
struct TaskFitReport {
  std::string task;
  double r2 = 0.0;
  bool converged = false;
};

/// Structured per-run observability: every caller and bench can print or
/// CSV-dump this instead of re-deriving its own diagnostics.
struct PipelineReport {
  std::string application;
  std::size_t threads = 1;

  // Per-stage wall time (seconds).
  double gather_seconds = 0.0;
  double fit_seconds = 0.0;
  double solve_seconds = 0.0;
  double execute_seconds = 0.0;
  double total_seconds() const;

  std::size_t probes = 0;  ///< benchmark runs performed during Gather

  std::vector<TaskFitReport> fits;  ///< per-task fit R²
  double min_r2() const;
  double mean_r2() const;

  SolverStats solver;

  double predicted_total = 0.0;  ///< Solve's prediction
  double actual_total = 0.0;     ///< Execute's measurement
  /// (actual - predicted) / predicted; 0 when predicted is 0.
  double prediction_error() const;

  /// Machine the Execute step ran on ("name (N nodes x C cores)"); empty
  /// when the application does not describe one.
  std::string machine;
  /// Shared execution metrics (hslb::Metrics) derived from the
  /// application's trace — the one place the optimal-LB criteria of
  /// arXiv:2104.01688 are computed. The exec_* scalar fields below are
  /// copies of its members, kept so existing consumers (CSV rows, benches,
  /// parity tests) read the classic layout unchanged.
  Metrics exec;
  /// Execution-runtime metrics, derived from the application's trace
  /// (zeros when no trace is exposed).
  double exec_makespan = 0.0;
  double exec_busy_node_seconds = 0.0;  ///< node occupancy incl. overheads
  double exec_efficiency = 0.0;
  double exec_imbalance = 0.0;
  /// Percent imbalance lambda = (max node busy / mean over ALL nodes - 1)
  /// x 100 (arXiv:2104.01688) — unlike exec_imbalance its mean includes
  /// idle nodes, so unallocated capacity counts against the schedule.
  double exec_percent_imbalance = 0.0;
  std::size_t exec_events = 0;
  std::size_t exec_restarts = 0;  ///< attempts aborted by a fail-stop
  bool exec_completed = true;     ///< false when a failure wedged the run

  // Closed-loop execution (hslb::Controller). A static run — and an
  // adaptive run that never trips the monitor — reports exactly one epoch
  // and zeros below, so its report is byte-identical to the one-shot path.
  std::size_t epochs = 1;          ///< allocation regimes executed (rebalances + 1)
  std::size_t rebalances = 0;      ///< accepted mid-run reallocations
  double migration_seconds = 0.0;  ///< total stall charged by migrations

  /// Term-wise predicted vs actual task-seconds: Solve's term_predictions
  /// merged with the application's execution_term_seconds() by term name.
  std::vector<TermReport> terms;
  /// Predicted/actual seconds of a named term (0 when not reported).
  double term_predicted(const std::string& term) const;
  double term_actual(const std::string& term) const;

  /// Human-readable multi-line rendering (what `hslb fmo/cesm` print).
  std::string str() const;

  /// One-line CSV dump (see csv_header) for bench sweeps.
  static std::string csv_header();
  std::string csv_row() const;
};

/// The substrate interface: implement these hooks and Pipeline::run does
/// the orchestration. Hooks are called in order: gather_plan, probe (many
/// times, possibly concurrently), fit_options, solve, execute.
class Application {
 public:
  virtual ~Application() = default;

  /// Label used in reports.
  virtual std::string name() const = 0;

  // -- Gather ---------------------------------------------------------------
  virtual GatherPlan gather_plan() = 0;

  /// One benchmark probe: task at `nodes`, repetition `rep`. MUST be
  /// thread-safe and order-independent (derive randomness from the
  /// arguments; see the determinism contract above).
  virtual double probe(const std::string& task, long long nodes,
                       std::uint64_t rep) = 0;

  // -- Fit ------------------------------------------------------------------
  virtual perf::FitOptions fit_options() const { return {}; }

  // -- Solve ----------------------------------------------------------------
  virtual SolveOutcome solve(
      const std::vector<std::pair<std::string, perf::FitResult>>& fits) = 0;

  // -- Execute --------------------------------------------------------------
  /// Runs the application under the allocation; returns the actual value of
  /// the metric `SolveOutcome::predicted_total` predicts.
  virtual double execute(const SolveOutcome& solution) = 0;

  /// Machine the Execute step runs on; a zero-node machine (the default)
  /// means "not described" and is omitted from the report.
  virtual sim::Machine machine() const { return {}; }

  /// Per-task execution trace of the last execute() call, or nullptr when
  /// the application does not record one. The pointer must stay valid
  /// until the next execute() call.
  virtual const sim::Trace* execution_trace() const { return nullptr; }

  /// False when the last execute() could not finish (e.g. a permanent
  /// node failure under a static schedule).
  virtual bool execution_completed() const { return true; }

  /// Actual task-seconds of the last execute() attributed per cost term
  /// (e.g. {"powerlaw", ...}, {"comm", ...}); empty when the application
  /// does not attribute execution time. Merged into PipelineReport::terms.
  virtual std::vector<std::pair<std::string, double>> execution_term_seconds()
      const {
    return {};
  }

  // -- Adaptive execution (closed loop) -------------------------------------
  // Substrates that can run Execute as a sequence of epochs implement the
  // hooks below; hslb::Controller then drives monitor -> refit -> warm
  // re-solve -> migrate between epochs. The defaults keep the one-shot
  // execute() path, so existing applications are untouched.

  /// True when the epoch hooks are implemented. An adaptive Pipeline run
  /// routes Execute through hslb::Controller only when this returns true.
  virtual bool supports_epochs() const { return false; }

  /// Cost-model spec the Fit step fitted (empty = the classic power law).
  /// The controller refits observed durations against the same spec, warm
  /// from the previous parameters (perf::refit_cost).
  virtual perf::CostModelSpec fit_spec() const { return {}; }

  /// Prepares epoch execution under the initial allocation. Called once,
  /// before the first execute_epoch.
  virtual void begin_epochs(const SolveOutcome& solution) { (void)solution; }

  /// Runs the next epoch under the allocation most recently installed by
  /// begin_epochs / apply_allocation. `epoch` is the controller's monotone
  /// call counter (used to stamp observations); the application keeps its
  /// own progress cursor — after a failure_detected pause it re-runs the
  /// wedged work on the next call, and when a failure is unrecoverable it
  /// reports done with execution_completed() false. An epoch split must
  /// align with the run's synchronization barriers so that executing
  /// epoch-by-epoch without rebalancing reproduces execute() bit-exactly.
  virtual EpochOutcome execute_epoch(std::size_t epoch) {
    (void)epoch;
    return {};
  }

  /// Warm re-solve against refitted models. Implementations should seed
  /// their solver from `incumbent` (minlp_warm_start, BnbOptions seeds) so
  /// the re-solve reuses what the previous search learned.
  virtual ResolveOutcome resolve(
      const std::vector<std::pair<std::string, perf::FitResult>>& fits,
      const SolveOutcome& incumbent) {
    (void)fits;
    return ResolveOutcome{incumbent, incumbent.predicted_total};
  }

  /// Predicted stall (seconds) of migrating from `from` to `to` mid-run —
  /// bytes moved over link bandwidth (sim::Machine::migration_seconds).
  virtual double migration_cost(const SolveOutcome& from,
                                const SolveOutcome& to) const {
    (void)from;
    (void)to;
    return 0.0;
  }

  /// Installs `solution` for subsequent epochs; returns the migration
  /// seconds actually charged to the run clock.
  virtual double apply_allocation(const SolveOutcome& solution) {
    (void)solution;
    return 0.0;
  }

  /// Ends epoch execution; returns the actual value of the metric
  /// SolveOutcome::predicted_total predicts (execute()'s return).
  virtual double finish_epochs() { return 0.0; }
};

/// When and how the closed-loop controller rebalances a running
/// application. `adaptive = false` (the default) keeps the classic
/// one-shot pipeline byte-identically.
struct RebalancePolicy {
  bool adaptive = false;  ///< route Execute through hslb::Controller
  /// Rebalance when an epoch's busy-time imbalance (max/mean - 1) exceeds
  /// this...
  double imbalance_threshold = 0.25;
  /// ...or when the mean relative prediction error over the refit window
  /// exceeds this.
  double drift_threshold = 0.10;
  /// Hysteresis: epochs that must pass after an accepted rebalance before
  /// the monitor may trip again (failure triggers bypass the gate).
  std::size_t min_epoch_gap = 1;
  /// Monitored-epoch cap: 0 monitors every epoch; otherwise triggers are
  /// only evaluated during the first max_epochs epochs (execution always
  /// continues to completion).
  std::size_t max_epochs = 0;
  /// Observation window (epochs) folded into each refit.
  std::size_t refit_window = 4;
  /// Replication weight of one observed duration against one gather probe
  /// (perf::fold_observations).
  double observation_weight = 4.0;
  /// Accept a proposal only when predicted gain x remaining epochs exceeds
  /// its migration stall (failures bypass the test).
  bool migration_aware = true;
};

struct PipelineOptions {
  std::size_t threads = 1;  ///< worker threads; 0 = hardware concurrency
  std::size_t gather_repetitions = 1;  ///< timed runs per (task, node count)
  /// Closed-loop rebalancing policy. Takes effect only when
  /// `rebalance.adaptive` is set AND the application supports epochs; a
  /// static run is the degenerate one-epoch case of the same machinery.
  RebalancePolicy rebalance;
};

/// Everything a run produced, stage by stage.
struct PipelineRun {
  perf::BenchTable bench;  ///< Gather output
  std::vector<std::pair<std::string, perf::FitResult>> fits;  ///< Fit output
  SolveOutcome solution;   ///< Solve output
  double actual_total = 0.0;  ///< Execute output
  /// Execute-step trace (empty when the application records none).
  sim::Trace trace;
  PipelineReport report;
};

class ThreadPool;

/// The engine. Stateless apart from its options: run() may be called
/// repeatedly — on the same Application or different ones — and each call
/// builds its own thread pool and PipelineRun from scratch, sharing no
/// state with previous calls. Two runs over the same (deterministic)
/// application and options therefore produce identical results; only the
/// wall-time fields differ.
class Pipeline {
 public:
  explicit Pipeline(PipelineOptions options = {});

  PipelineRun run(Application& app) const;

  /// Same engine over a caller-owned pool, so long-running hosts (the
  /// allocation service) can batch many pipeline runs onto one set of
  /// workers. Safe to call concurrently from several threads with the
  /// same pool — overlapping runs serialize their parallel stages through
  /// the pool (see ThreadPool::parallel_for) and each computes exactly
  /// what it would have computed alone. `options_.threads` is ignored;
  /// the pool's size is reported instead.
  PipelineRun run(Application& app, ThreadPool& pool) const;

 private:
  PipelineOptions options_;
};

}  // namespace hslb
