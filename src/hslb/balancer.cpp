#include "hslb/balancer.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "common/strings.hpp"

namespace hslb {

namespace {

/// Index of the least-loaded group (smallest index wins ties, so results
/// are deterministic and independent of container iteration quirks).
long long least_loaded(const std::vector<double>& load) {
  long long best = 0;
  for (long long g = 1; g < static_cast<long long>(load.size()); ++g)
    if (load[g] < load[best]) best = g;
  return best;
}

BalanceResult result_from(std::vector<long long> owner,
                          const std::vector<double>& loads,
                          long long groups) {
  BalanceResult out;
  out.owner = std::move(owner);
  out.group_load.assign(groups, 0.0);
  for (std::size_t i = 0; i < loads.size(); ++i)
    out.group_load[out.owner[i]] += loads[i];
  return out;
}

/// Items sorted largest-load-first; ties broken by original index so the
/// order (and thus the placement) is fully deterministic.
std::vector<long long> largest_first(const std::vector<double>& loads) {
  std::vector<long long> order(loads.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](long long a, long long b) {
    return loads[a] > loads[b];
  });
  return order;
}

/// Arrival-order greedy: each item goes to the currently least-loaded
/// group.  The weakest reasonable baseline — sensitive to input order.
class GreedyBalancer final : public Balancer {
 public:
  std::string name() const override { return "greedy"; }
  std::string description() const override {
    return "arrival-order greedy: each item to the least-loaded group";
  }
  BalanceResult balance(const std::vector<double>& loads,
                        const NodeGraph& graph) const override {
    std::vector<double> load(graph.groups, 0.0);
    std::vector<long long> owner(loads.size(), 0);
    for (std::size_t i = 0; i < loads.size(); ++i) {
      const long long g = least_loaded(load);
      owner[i] = g;
      load[g] += loads[i];
    }
    return result_from(std::move(owner), loads, graph.groups);
  }
};

/// Largest-first list scheduling (LPT).  For identical groups this is
/// exactly what the dynamic-queue DLB runtime converges to when every
/// group draws the largest remaining task the moment it goes idle, so it
/// stands in for DLB in placement-quality comparisons.
class DlbBalancer final : public Balancer {
 public:
  std::string name() const override { return "dlb"; }
  std::string description() const override {
    return "largest-first list scheduling (dynamic-queue equivalent)";
  }
  BalanceResult balance(const std::vector<double>& loads,
                        const NodeGraph& graph) const override {
    std::vector<double> load(graph.groups, 0.0);
    std::vector<long long> owner(loads.size(), 0);
    for (long long i : largest_first(loads)) {
      const long long g = least_loaded(load);
      owner[i] = g;
      load[g] += loads[i];
    }
    return result_from(std::move(owner), loads, graph.groups);
  }
};

/// Static HSLB-style placement: LPT seed, then pairwise refinement (single
///-item moves and two-item swaps between the most- and less-loaded groups)
/// until no move lowers the makespan.  This mirrors the paper's "plan the
/// whole schedule up front from known costs" stance: more solve-time work
/// than DLB, strictly no worse a placement.
class HslbStaticBalancer final : public Balancer {
 public:
  std::string name() const override { return "hslb-static"; }
  std::string description() const override {
    return "static HSLB placement: LPT + pairwise move/swap refinement";
  }
  BalanceResult balance(const std::vector<double>& loads,
                        const NodeGraph& graph) const override {
    BalanceResult out = DlbBalancer().balance(loads, graph);
    const long long n = static_cast<long long>(loads.size());
    bool improved = true;
    while (improved) {
      improved = false;
      ++out.rounds;
      const long long src = static_cast<long long>(
          std::max_element(out.group_load.begin(), out.group_load.end()) -
          out.group_load.begin());
      const double span = out.group_load[src];
      // Best single-item move off the critical group.
      long long best_item = -1, best_dst = -1;
      double best_span = span;
      for (long long i = 0; i < n; ++i) {
        if (out.owner[i] != src) continue;
        for (long long g = 0; g < graph.groups; ++g) {
          if (g == src) continue;
          const double new_span =
              std::max(span - loads[i], out.group_load[g] + loads[i]);
          if (new_span < best_span - 1e-12) {
            best_span = new_span;
            best_item = i;
            best_dst = g;
          }
        }
      }
      if (best_item >= 0) {
        out.group_load[src] -= loads[best_item];
        out.group_load[best_dst] += loads[best_item];
        out.owner[best_item] = best_dst;
        ++out.moves;
        improved = true;
        continue;
      }
      // Best swap of one critical-group item with a lighter item elsewhere.
      long long swap_a = -1, swap_b = -1;
      for (long long a = 0; a < n; ++a) {
        if (out.owner[a] != src) continue;
        for (long long b = 0; b < n; ++b) {
          const long long dst = out.owner[b];
          if (dst == src || loads[b] >= loads[a]) continue;
          const double delta = loads[a] - loads[b];
          const double new_span =
              std::max(span - delta, out.group_load[dst] + delta);
          if (new_span < best_span - 1e-12) {
            best_span = new_span;
            swap_a = a;
            swap_b = b;
          }
        }
      }
      if (swap_a >= 0) {
        const long long dst = out.owner[swap_b];
        const double delta = loads[swap_a] - loads[swap_b];
        out.group_load[src] -= delta;
        out.group_load[dst] += delta;
        std::swap(out.owner[swap_a], out.owner[swap_b]);
        out.moves += 2;
        improved = true;
      }
    }
    return out;
  }
};

/// Diffusion-based neighbour balancing of indivisible real-valued loads
/// (arXiv:1308.0148).  Items start in contiguous index blocks; each round
/// sweeps the groups in index order and, for each overloaded group, moves
/// the largest item whose transfer to a lighter graph neighbour strictly
/// lowers the sum of squared group loads (load[h] + w < load[g] implies
/// the potential drops by 2w(load[g] - load[h] - w) > 0).  The potential
/// is bounded below and every move decreases it by a positive amount, so
/// the sweep terminates; a round cap guards degenerate float cases.
class DiffusionBalancer final : public Balancer {
 public:
  std::string name() const override { return "diffusion"; }
  std::string description() const override {
    return "neighbour diffusion of indivisible loads on the node graph";
  }
  BalanceResult balance(const std::vector<double>& loads,
                        const NodeGraph& graph) const override {
    const long long n = static_cast<long long>(loads.size());
    std::vector<long long> owner(n, 0);
    for (long long i = 0; i < n; ++i)
      owner[i] = n == 0 ? 0 : i * graph.groups / n;
    BalanceResult out = result_from(std::move(owner), loads, graph.groups);
    // items[g] holds the indices owned by g, kept sorted by load
    // descending so "largest movable item" is a linear scan.
    std::vector<std::vector<long long>> items(graph.groups);
    for (long long i = 0; i < n; ++i) items[out.owner[i]].push_back(i);
    for (auto& v : items)
      std::stable_sort(v.begin(), v.end(), [&](long long a, long long b) {
        return loads[a] > loads[b];
      });
    constexpr long long kMaxRounds = 200;
    for (long long round = 0; round < kMaxRounds; ++round) {
      bool moved = false;
      ++out.rounds;
      for (long long g = 0; g < graph.groups; ++g) {
        for (long long h : graph.neighbors[g]) {
          if (out.group_load[h] >= out.group_load[g]) continue;
          // Largest item on g that still fits strictly under g's load
          // once placed on h.
          for (std::size_t k = 0; k < items[g].size(); ++k) {
            const long long i = items[g][k];
            const double w = loads[i];
            if (out.group_load[h] + w < out.group_load[g] - 1e-12) {
              items[g].erase(items[g].begin() + static_cast<long long>(k));
              auto pos = std::find_if(
                  items[h].begin(), items[h].end(),
                  [&](long long j) { return loads[j] < w; });
              items[h].insert(pos, i);
              out.group_load[g] -= w;
              out.group_load[h] += w;
              out.owner[i] = h;
              ++out.moves;
              moved = true;
              break;
            }
          }
        }
      }
      if (!moved) break;
    }
    return out;
  }
};

}  // namespace

NodeGraph NodeGraph::complete(long long groups) {
  NodeGraph g;
  g.groups = groups;
  g.neighbors.resize(groups);
  for (long long a = 0; a < groups; ++a)
    for (long long b = 0; b < groups; ++b)
      if (a != b) g.neighbors[a].push_back(b);
  return g;
}

NodeGraph NodeGraph::ring(long long groups) {
  NodeGraph g;
  g.groups = groups;
  g.neighbors.resize(groups);
  for (long long a = 0; a < groups; ++a) {
    if (groups <= 1) continue;
    g.neighbors[a].push_back((a + 1) % groups);
    g.neighbors[a].push_back((a + groups - 1) % groups);
  }
  return g;
}

NodeGraph NodeGraph::torus2d(long long rows, long long cols) {
  NodeGraph g;
  g.groups = rows * cols;
  g.neighbors.resize(g.groups);
  for (long long r = 0; r < rows; ++r)
    for (long long c = 0; c < cols; ++c) {
      const long long a = r * cols + c;
      g.neighbors[a] = {((r + 1) % rows) * cols + c,
                        ((r + rows - 1) % rows) * cols + c,
                        r * cols + (c + 1) % cols,
                        r * cols + (c + cols - 1) % cols};
      std::sort(g.neighbors[a].begin(), g.neighbors[a].end());
      g.neighbors[a].erase(
          std::unique(g.neighbors[a].begin(), g.neighbors[a].end()),
          g.neighbors[a].end());
      g.neighbors[a].erase(
          std::remove(g.neighbors[a].begin(), g.neighbors[a].end(), a),
          g.neighbors[a].end());
    }
  return g;
}

double BalanceResult::makespan() const {
  if (group_load.empty()) return 0.0;
  return *std::max_element(group_load.begin(), group_load.end());
}

Metrics BalanceResult::metrics() const {
  return Metrics::from_loads(group_load, makespan());
}

std::vector<std::unique_ptr<Balancer>> make_balancers() {
  std::vector<std::unique_ptr<Balancer>> out;
  out.push_back(std::make_unique<HslbStaticBalancer>());
  out.push_back(std::make_unique<DlbBalancer>());
  out.push_back(std::make_unique<GreedyBalancer>());
  out.push_back(std::make_unique<DiffusionBalancer>());
  return out;
}

std::unique_ptr<Balancer> make_balancer(const std::string& name) {
  for (auto& b : make_balancers())
    if (b->name() == name) return std::move(b);
  throw std::invalid_argument(strings::format(
      "unknown balancer '%s' (known: hslb-static, dlb, greedy, diffusion)",
      name.c_str()));
}

}  // namespace hslb
