#include "hslb/registry.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/strings.hpp"
#include "hslb/objective.hpp"

namespace hslb {

std::string ScenarioSpec::str() const {
  std::string s = strings::format(
      "%s/%s tasks=%lld nodes=%lld sys_seed=%llu bench_seed=%llu "
      "fit_points=%lld %s %s noise_cv=%.3g run_seed=%llu",
      substrate.c_str(), variant.empty() ? "default" : variant.c_str(),
      tasks, nodes, system_seed, bench_seed, fit_points,
      minlp ? "minlp" : "greedy",
      objective == Objective::MinMax
          ? "minmax"
          : (objective == Objective::MaxMin ? "maxmin" : "minsum"),
      noise_cv, run_seed);
  if (straggler_cv > 0.0)
    s += strings::format(" straggler_cv=%.3g", straggler_cv);
  if (fail_node >= 0)
    s += strings::format(" fail_node=%lld fail_time=%.3g", fail_node,
                         fail_time);
  if (std::isfinite(link_gb_per_s))
    s += strings::format(" link_gb=%.3g", link_gb_per_s);
  if (std::isfinite(memory_gb_per_node))
    s += strings::format(" mem_gb=%.3g", memory_gb_per_node);
  if (rebalance.adaptive) s += " adaptive";
  return s;
}

SubstrateRegistry& SubstrateRegistry::instance() {
  static SubstrateRegistry registry;
  return registry;
}

void SubstrateRegistry::add(SubstrateInfo info, SubstrateFactory factory) {
  for (Entry& e : entries_)
    if (e.info.name == info.name) {
      e.info = std::move(info);
      e.factory = std::move(factory);
      return;
    }
  entries_.push_back({std::move(info), std::move(factory)});
}

bool SubstrateRegistry::contains(const std::string& name) const {
  return find(name) != nullptr;
}

const SubstrateInfo* SubstrateRegistry::find(const std::string& name) const {
  for (const Entry& e : entries_)
    if (e.info.name == name) return &e.info;
  return nullptr;
}

std::vector<SubstrateInfo> SubstrateRegistry::list() const {
  std::vector<SubstrateInfo> out;
  out.reserve(entries_.size());
  for (const Entry& e : entries_) out.push_back(e.info);
  std::sort(out.begin(), out.end(),
            [](const SubstrateInfo& a, const SubstrateInfo& b) {
              return a.name < b.name;
            });
  return out;
}

std::shared_ptr<Application> SubstrateRegistry::make(
    const ScenarioSpec& spec) const {
  for (const Entry& e : entries_)
    if (e.info.name == spec.substrate) return e.factory(spec);
  std::string known;
  for (const SubstrateInfo& info : list()) {
    if (!known.empty()) known += ", ";
    known += info.name;
  }
  throw std::invalid_argument(strings::format(
      "unknown substrate '%s' (registered: %s)", spec.substrate.c_str(),
      known.empty() ? "none" : known.c_str()));
}

}  // namespace hslb
