#include "hslb/budget.hpp"

#include <algorithm>
#include <cmath>
#include <queue>

#include "common/contracts.hpp"

namespace hslb {

namespace {

/// A knapsack (memory) term can force more nodes than the caller's
/// min_nodes: the effective floor every solver and the MINLP builder use.
/// Compute-only models report min_feasible_nodes() == 1, so the floor
/// degenerates to min_nodes there.
long long effective_min(const BudgetTask& t) {
  return std::max(t.min_nodes, t.model.min_feasible_nodes());
}

void validate(std::span<const BudgetTask> tasks, long long budget) {
  HSLB_EXPECTS(!tasks.empty());
  long long min_total = 0;
  for (const auto& t : tasks) {
    HSLB_EXPECTS(t.min_nodes >= 1);
    HSLB_EXPECTS(t.max_nodes >= effective_min(t));
    min_total += effective_min(t);
  }
  HSLB_EXPECTS(min_total <= budget);
}

double eval(const BudgetTask& t, long long n) {
  return t.model.eval(static_cast<double>(n));
}

Allocation finish(std::span<const BudgetTask> tasks,
                  const std::vector<long long>& nodes, Objective objective) {
  Allocation out;
  for (std::size_t f = 0; f < tasks.size(); ++f) {
    out.tasks.push_back(
        TaskAllocation{tasks[f].name, nodes[f], eval(tasks[f], nodes[f])});
  }
  out.predicted_total = evaluate_objective(tasks, nodes, objective);
  return out;
}

}  // namespace

double evaluate_objective(std::span<const BudgetTask> tasks,
                          std::span<const long long> nodes,
                          Objective objective) {
  HSLB_EXPECTS(tasks.size() == nodes.size());
  HSLB_EXPECTS(!tasks.empty());
  std::vector<double> times(tasks.size());
  for (std::size_t f = 0; f < tasks.size(); ++f)
    times[f] = eval(tasks[f], nodes[f]);
  return fold_objective(objective, times);
}

Allocation solve_min_max(std::span<const BudgetTask> tasks, long long budget) {
  validate(tasks, budget);

  // Cap each task at its own argmin: past it more nodes only hurt.
  std::vector<long long> cap(tasks.size());
  std::vector<long long> nodes(tasks.size());
  long long used = 0;
  for (std::size_t f = 0; f < tasks.size(); ++f) {
    const long long lo = effective_min(tasks[f]);
    cap[f] = tasks[f].model.argmin_int(lo, tasks[f].max_nodes).first;
    nodes[f] = lo;
    used += nodes[f];
  }

  // Greedy: always feed the currently slowest task; stop when it cannot
  // improve (then neither can the makespan) or the budget runs out.
  using Entry = std::pair<double, std::size_t>;  // (-time ordering via less)
  std::priority_queue<Entry> heap;
  for (std::size_t f = 0; f < tasks.size(); ++f)
    heap.push({eval(tasks[f], nodes[f]), f});

  while (used < budget) {
    const auto [time, f] = heap.top();
    if (nodes[f] >= cap[f]) break;  // slowest task saturated: done
    heap.pop();
    ++nodes[f];
    ++used;
    heap.push({eval(tasks[f], nodes[f]), f});
  }
  return finish(tasks, nodes, Objective::MinMax);
}

Allocation solve_min_sum(std::span<const BudgetTask> tasks, long long budget) {
  validate(tasks, budget);
  std::vector<long long> nodes(tasks.size());
  long long used = 0;
  for (std::size_t f = 0; f < tasks.size(); ++f) {
    nodes[f] = effective_min(tasks[f]);
    used += nodes[f];
  }
  // Marginal gains are non-increasing for convex models, so a gain heap
  // yields the exact optimum.
  using Entry = std::pair<double, std::size_t>;  // (gain, task)
  std::priority_queue<Entry> heap;
  auto gain = [&](std::size_t f) {
    if (nodes[f] >= tasks[f].max_nodes) return -1.0;
    return eval(tasks[f], nodes[f]) - eval(tasks[f], nodes[f] + 1);
  };
  for (std::size_t f = 0; f < tasks.size(); ++f) heap.push({gain(f), f});
  while (used < budget && !heap.empty()) {
    const auto [g, f] = heap.top();
    heap.pop();
    if (g <= 0.0) break;  // no further improvement anywhere
    // The stored gain may be stale; re-validate before applying.
    const double fresh = gain(f);
    if (fresh != g) {
      if (fresh > 0.0) heap.push({fresh, f});
      continue;
    }
    ++nodes[f];
    ++used;
    heap.push({gain(f), f});
  }
  return finish(tasks, nodes, Objective::MinSum);
}

Allocation solve_max_min(std::span<const BudgetTask> tasks, long long budget) {
  validate(tasks, budget);
  // max-min is an equalization objective: with a "<= budget" constraint it
  // degenerates (fewest nodes maximize every time), so by convention it
  // spends the whole budget (all N nodes, as the papers' runs do). Start
  // from the min-max solution, pour the remaining nodes greedily, then
  // hill-climb with single-node moves between task pairs.
  Allocation start = solve_min_max(tasks, budget);
  std::vector<long long> nodes(tasks.size());
  long long used = 0;
  for (std::size_t f = 0; f < tasks.size(); ++f) {
    nodes[f] = start.tasks[f].nodes;
    used += nodes[f];
  }
  while (used < budget) {
    // Give the next node wherever it hurts the minimum time least.
    std::size_t best_f = tasks.size();
    double best_obj = -1e300;
    for (std::size_t f = 0; f < tasks.size(); ++f) {
      if (nodes[f] >= tasks[f].max_nodes) continue;
      ++nodes[f];
      const double obj = evaluate_objective(tasks, nodes, Objective::MaxMin);
      --nodes[f];
      if (obj > best_obj) {
        best_obj = obj;
        best_f = f;
      }
    }
    if (best_f == tasks.size()) break;  // every task at its cap
    ++nodes[best_f];
    ++used;
  }

  double best = evaluate_objective(tasks, nodes, Objective::MaxMin);
  const std::size_t max_rounds = 10000;
  for (std::size_t round = 0; round < max_rounds; ++round) {
    double round_best = best;
    std::size_t best_from = tasks.size(), best_to = tasks.size();
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      if (nodes[i] <= effective_min(tasks[i])) continue;
      for (std::size_t j = 0; j < tasks.size(); ++j) {
        if (i == j || nodes[j] >= tasks[j].max_nodes) continue;
        --nodes[i];
        ++nodes[j];
        const double v = evaluate_objective(tasks, nodes, Objective::MaxMin);
        if (v > round_best + 1e-12) {
          round_best = v;
          best_from = i;
          best_to = j;
        }
        ++nodes[i];
        --nodes[j];
      }
    }
    if (best_from == tasks.size()) break;  // local optimum
    --nodes[best_from];
    ++nodes[best_to];
    best = round_best;
  }
  return finish(tasks, nodes, Objective::MaxMin);
}

Allocation solve_budget(std::span<const BudgetTask> tasks, long long budget,
                        Objective objective) {
  switch (objective) {
    case Objective::MinMax: return solve_min_max(tasks, budget);
    case Objective::MinSum: return solve_min_sum(tasks, budget);
    case Objective::MaxMin: return solve_max_min(tasks, budget);
  }
  HSLB_ASSERT(!"unreachable");
  return {};
}

minlp::Model build_budget_minlp(std::span<const BudgetTask> tasks,
                                long long budget, Objective objective) {
  HSLB_EXPECTS(objective == Objective::MinMax || objective == Objective::MinSum);
  validate(tasks, budget);
  minlp::Model m;

  // n_f variables first (task order), epigraph variable(s) after, then any
  // auxiliary split variables — so compute-only instances lay out exactly
  // as the power-law-only builder did (warm starts, presolve, and the cut
  // pool see an unchanged model).
  std::vector<std::size_t> n_vars;
  double worst_total = 0.0;
  for (const auto& t : tasks) {
    n_vars.push_back(m.add_integer(static_cast<double>(effective_min(t)),
                                   static_cast<double>(t.max_nodes),
                                   "n_" + t.name));
    worst_total += t.model.eval(static_cast<double>(effective_min(t)));
  }

  // Convex nonlinear epigraph for the non-affine part of a cost model:
  //   nonlinear(n) - epi <= 0
  // where `epi` is either the task time variable itself (no affine terms —
  // the classic case) or an auxiliary split variable s.
  auto add_epigraph = [&m](std::size_t n_var, const perf::CostModel& cm,
                           std::size_t epi_var, const std::string& name) {
    minlp::NonlinearConstraint c;
    c.name = name;
    c.formula =
        cm.expr_nonlinear(m.var_name(n_var)) + " - " + m.var_name(epi_var) +
        " <= 0";
    c.vars = {n_var, epi_var};
    c.value = [n_var, epi_var, cm](std::span<const double> x) {
      return cm.eval_nonlinear(x[n_var]) - x[epi_var];
    };
    c.gradient = [n_var, epi_var, cm](std::span<const double> x) {
      return std::vector<minlp::GradEntry>{{n_var, cm.deriv_nonlinear(x[n_var])},
                                           {epi_var, -1.0}};
    };
    m.add_nonlinear(std::move(c));
  };

  // Per-task constraint assembly: the affine part (communication, serial
  // floors of linear terms) goes in as an exact linear row, the rest as
  // the nonlinear epigraph; memory terms add their knapsack row.
  auto add_task_rows = [&](std::size_t f, std::size_t t_var) {
    const auto& task = tasks[f];
    const std::size_t n_var = n_vars[f];
    double slope = 0.0, intercept = 0.0;
    const bool has_lin = task.model.linear_part(slope, intercept);
    if (!has_lin) {
      add_epigraph(n_var, task.model, t_var, "T_" + task.name);
    } else if (task.model.has_nonlinear()) {
      // Split: nonlinear(n) <= s and s + slope*n <= t - intercept. The
      // linearized communication cost rides in the LP relaxation exactly,
      // so outer-approximation cuts only chase the genuinely curved part.
      const auto s_var =
          m.add_continuous(0.0, worst_total, "s_" + task.name);
      add_epigraph(n_var, task.model, s_var, "S_" + task.name);
      m.add_linear({{s_var, 1.0}, {n_var, slope}, {t_var, -1.0}},
                   -minlp::kInf, -intercept, "lin_" + task.name);
    } else {
      // Fully affine model: no nonlinear constraint at all.
      m.add_linear({{n_var, slope}, {t_var, -1.0}}, -minlp::kInf, -intercept,
                   "lin_" + task.name);
    }
    for (std::size_t i = 0; i < task.model.num_terms(); ++i) {
      double cap = 0.0, demand = 0.0;
      if (task.model.term(i).knapsack_row(cap, demand)) {
        // capacity * n >= working set: the memory knapsack.
        m.add_linear({{n_var, cap}}, demand, minlp::kInf,
                     "mem_" + task.name);
      }
    }
  };

  if (objective == Objective::MinMax) {
    const auto t_var = m.add_continuous(0.0, worst_total, "T");
    m.set_objective(t_var, 1.0);
    for (std::size_t f = 0; f < tasks.size(); ++f) add_task_rows(f, t_var);
  } else {
    for (std::size_t f = 0; f < tasks.size(); ++f) {
      const auto t_var = m.add_continuous(0.0, worst_total, "t_" + tasks[f].name);
      m.set_objective(t_var, 1.0);
      add_task_rows(f, t_var);
    }
  }

  std::vector<lp::Coeff> coeffs;
  for (auto v : n_vars) coeffs.push_back({v, 1.0});
  m.add_linear(std::move(coeffs), 0.0, static_cast<double>(budget), "budget");
  return m;
}

std::vector<double> minlp_warm_start(std::span<const BudgetTask> tasks,
                                     std::span<const long long> nodes,
                                     Objective objective) {
  HSLB_EXPECTS(objective == Objective::MinMax || objective == Objective::MinSum);
  HSLB_EXPECTS(tasks.size() == nodes.size());
  std::vector<double> x;
  for (long long n : nodes) x.push_back(static_cast<double>(n));
  // Mirror build_budget_minlp's variable order: epigraph variable(s) after
  // the node counts, split variables appended as each task's rows are
  // assembled.
  auto push_split = [&x](const BudgetTask& t, long long n) {
    double slope = 0.0, intercept = 0.0;
    if (t.model.linear_part(slope, intercept) && t.model.has_nonlinear())
      x.push_back(t.model.eval_nonlinear(static_cast<double>(n)));
  };
  if (objective == Objective::MinMax) {
    double worst = 0.0;
    for (std::size_t f = 0; f < tasks.size(); ++f)
      worst = std::max(worst, eval(tasks[f], nodes[f]));
    x.push_back(worst);
    for (std::size_t f = 0; f < tasks.size(); ++f)
      push_split(tasks[f], nodes[f]);
  } else {
    for (std::size_t f = 0; f < tasks.size(); ++f) {
      x.push_back(eval(tasks[f], nodes[f]));
      push_split(tasks[f], nodes[f]);
    }
  }
  return x;
}

Allocation allocation_from_minlp(std::span<const BudgetTask> tasks,
                                 std::span<const double> x,
                                 Objective objective) {
  HSLB_EXPECTS(x.size() >= tasks.size());
  std::vector<long long> nodes(tasks.size());
  for (std::size_t f = 0; f < tasks.size(); ++f)
    nodes[f] = std::llround(x[f]);
  Allocation out;
  for (std::size_t f = 0; f < tasks.size(); ++f)
    out.tasks.push_back(TaskAllocation{tasks[f].name, nodes[f],
                                       eval(tasks[f], nodes[f])});
  out.predicted_total = evaluate_objective(tasks, nodes, objective);
  return out;
}

}  // namespace hslb
