#include "minlp/cuts.hpp"

#include <cmath>

#include "common/contracts.hpp"

namespace hslb::minlp {

double Cut::violation(std::span<const double> x) const {
  double activity = 0.0;
  for (const auto& [v, c] : coeffs) activity += c * x[v];
  return activity - rhs;
}

Cut make_oa_cut(const Model& model, std::size_t k, std::span<const double> x) {
  HSLB_EXPECTS(k < model.nonlinear().size());
  const auto& con = model.nonlinear()[k];
  const double fx = con.value(x);
  const auto grad = con.gradient(x);

  // grad^T x_new <= grad^T x_k - f(x_k)
  Cut cut;
  cut.source_constraint = k;
  double rhs = -fx;
  for (const auto& [v, g] : grad) {
    HSLB_EXPECTS(std::isfinite(g));
    if (g != 0.0) cut.coeffs.push_back({v, g});
    rhs += g * x[v];
  }
  HSLB_EXPECTS(std::isfinite(rhs));
  cut.rhs = rhs;
  return cut;
}

bool CutPool::add(Cut cut) {
  // Duplicate suppression: same source, same sparsity pattern, coefficients
  // and rhs within a relative tolerance. Linearizing twice at (nearly) the
  // same point is common when the solver revisits an incumbent.
  for (const Cut& c : cuts_) {
    if (c.source_constraint != cut.source_constraint) continue;
    if (c.coeffs.size() != cut.coeffs.size()) continue;
    const double scale = 1.0 + std::fabs(c.rhs);
    if (std::fabs(c.rhs - cut.rhs) > 1e-9 * scale) continue;
    bool same = true;
    for (std::size_t i = 0; i < c.coeffs.size() && same; ++i) {
      same = c.coeffs[i].first == cut.coeffs[i].first &&
             std::fabs(c.coeffs[i].second - cut.coeffs[i].second) <=
                 1e-9 * (1.0 + std::fabs(c.coeffs[i].second));
    }
    if (same) return false;
  }
  cuts_.push_back(std::move(cut));
  return true;
}

std::size_t CutPool::add_violated(const Model& model, std::span<const double> x,
                                  double tol) {
  std::size_t added = 0;
  for (std::size_t k = 0; k < model.nonlinear().size(); ++k) {
    if (model.nonlinear()[k].value(x) > tol) {
      if (add(make_oa_cut(model, k, x))) ++added;
    }
  }
  return added;
}

}  // namespace hslb::minlp
