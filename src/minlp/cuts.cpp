#include "minlp/cuts.hpp"

#include <cmath>

#include "common/contracts.hpp"
#include "common/hash.hpp"

namespace hslb::minlp {

namespace {

/// FNV-1a (common/hash.hpp) over the cut's discrete identity: source
/// constraint plus the sparsity pattern. Coefficient *values* are excluded
/// — they are compared with a tolerance inside the bucket, and hashing
/// them would scatter near-duplicates across buckets.
std::uint64_t cut_signature(const Cut& cut) {
  hash::Fnv1a h;
  h.mix(static_cast<std::uint64_t>(cut.source_constraint));
  h.mix(static_cast<std::uint64_t>(cut.coeffs.size()));
  for (const auto& [v, c] : cut.coeffs) {
    (void)c;
    h.mix(static_cast<std::uint64_t>(v));
  }
  return h.value();
}

bool near_duplicate(const Cut& a, const Cut& b) {
  if (a.source_constraint != b.source_constraint) return false;
  if (a.coeffs.size() != b.coeffs.size()) return false;
  if (std::fabs(a.rhs - b.rhs) > 1e-9 * (1.0 + std::fabs(a.rhs))) return false;
  for (std::size_t i = 0; i < a.coeffs.size(); ++i) {
    if (a.coeffs[i].first != b.coeffs[i].first) return false;
    if (std::fabs(a.coeffs[i].second - b.coeffs[i].second) >
        1e-9 * (1.0 + std::fabs(a.coeffs[i].second)))
      return false;
  }
  return true;
}

}  // namespace

double Cut::violation(std::span<const double> x) const {
  double activity = 0.0;
  for (const auto& [v, c] : coeffs) activity += c * x[v];
  return activity - rhs;
}

Cut make_oa_cut(const Model& model, std::size_t k, std::span<const double> x) {
  HSLB_EXPECTS(k < model.nonlinear().size());
  const auto& con = model.nonlinear()[k];
  const double fx = con.value(x);
  const auto grad = con.gradient(x);

  // grad^T x_new <= grad^T x_k - f(x_k)
  Cut cut;
  cut.source_constraint = k;
  double rhs = -fx;
  for (const auto& [v, g] : grad) {
    HSLB_EXPECTS(std::isfinite(g));
    if (g != 0.0) cut.coeffs.push_back({v, g});
    rhs += g * x[v];
  }
  HSLB_EXPECTS(std::isfinite(rhs));
  cut.rhs = rhs;
  return cut;
}

std::size_t CutPool::find_duplicate(const Cut& cut) const {
  const auto it = by_signature_.find(cut_signature(cut));
  if (it == by_signature_.end()) return npos;
  for (const std::size_t id : it->second) {
    if (near_duplicate(cuts_[id], cut)) return id;
  }
  return npos;
}

std::size_t CutPool::insert(Cut cut) {
  const std::size_t dup = find_duplicate(cut);
  if (dup != npos) return dup;
  const std::size_t id = cuts_.size();
  by_signature_[cut_signature(cut)].push_back(id);
  cuts_.push_back(std::move(cut));
  age_.push_back(0);
  active_.push_back(1);
  ++num_active_;
  return id;
}

bool CutPool::add(Cut cut) {
  const std::size_t before = cuts_.size();
  const std::size_t id = insert(std::move(cut));
  if (cuts_.size() != before) return true;
  // Duplicate of a retired cut: the caller is re-deriving it, so it is
  // violated again — put it back in play instead of dropping the request.
  reactivate(id);
  return false;
}

std::size_t CutPool::add_violated(const Model& model, std::span<const double> x,
                                  double tol) {
  std::size_t added = 0;
  for (std::size_t k = 0; k < model.nonlinear().size(); ++k) {
    if (model.nonlinear()[k].value(x) > tol) {
      if (add(make_oa_cut(model, k, x))) ++added;
    }
  }
  return added;
}

std::vector<std::size_t> CutPool::active_ids() const {
  std::vector<std::size_t> ids;
  ids.reserve(num_active_);
  for (std::size_t id = 0; id < cuts_.size(); ++id) {
    if (active_[id]) ids.push_back(id);
  }
  return ids;
}

bool CutPool::observe(std::size_t id, bool tight, std::size_t age_limit) {
  HSLB_EXPECTS(id < cuts_.size());
  if (!active_[id]) return false;
  if (tight) {
    age_[id] = 0;
    return false;
  }
  ++age_[id];
  if (age_limit == 0 || age_[id] <= age_limit) return false;
  active_[id] = 0;
  --num_active_;
  ++retired_total_;
  return true;
}

bool CutPool::reactivate(std::size_t id) {
  HSLB_EXPECTS(id < cuts_.size());
  if (active_[id]) return false;
  active_[id] = 1;
  age_[id] = 0;
  ++num_active_;
  ++reactivated_total_;
  return true;
}

CutLedger::CutLedger(const CutPool& shared,
                     std::span<const std::size_t> wave_active)
    : shared_(shared), in_layout_(shared.size(), 0) {
  layout_.reserve(wave_active.size());
  for (const std::size_t id : wave_active) {
    layout_.push_back({id, false});
    in_layout_[id] = 1;
  }
}

const Cut& CutLedger::cut(std::size_t layout_pos) const {
  const Ref& ref = layout_[layout_pos];
  return ref.is_appended ? appended_[ref.index] : shared_.cuts()[ref.index];
}

bool CutLedger::add(Cut cut) {
  const std::size_t dup = shared_.find_duplicate(cut);
  if (dup != CutPool::npos) {
    if (in_layout_[dup]) return false;  // already a row of this node's LP
    // Re-derived a retired cut: reactivate it rather than storing a copy.
    layout_.push_back({dup, false});
    in_layout_[dup] = 1;
    reactivated_.push_back(dup);
    return true;
  }
  for (const Cut& c : appended_) {
    if (near_duplicate(c, cut)) return false;
  }
  layout_.push_back({appended_.size(), true});
  appended_.push_back(std::move(cut));
  return true;
}

std::size_t CutLedger::add_violated(const Model& model,
                                    std::span<const double> x, double tol) {
  std::size_t gained = 0;
  for (std::size_t k = 0; k < model.nonlinear().size(); ++k) {
    if (model.nonlinear()[k].value(x) > tol) {
      if (add(make_oa_cut(model, k, x))) ++gained;
    }
  }
  return gained;
}

std::size_t CutLedger::reactivate_violated(std::span<const double> x,
                                           double tol) {
  std::size_t gained = 0;
  for (std::size_t id = 0; id < shared_.size(); ++id) {
    if (shared_.is_active(id) || in_layout_[id]) continue;
    if (shared_.cuts()[id].violation(x) > tol) {
      layout_.push_back({id, false});
      in_layout_[id] = 1;
      reactivated_.push_back(id);
      ++gained;
    }
  }
  return gained;
}

}  // namespace hslb::minlp
