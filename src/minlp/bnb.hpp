// LP/NLP-based branch-and-bound for convex MINLPs (Quesada-Grossmann),
// following the algorithm description in §III-E of the paper:
//
//  * an initial MILP relaxation is built from linearizations at the solution
//    of the continuous NLP relaxation;
//  * the tree search solves LP relaxations; fractional solutions are
//    branched on; integral solutions that violate a nonlinear constraint
//    get fresh outer-approximation cuts and the node is re-solved;
//  * integral solutions feasible for all nonlinear constraints become
//    incumbents;
//  * special-ordered sets are branched on as sets (the paper reports this is
//    ~two orders of magnitude faster than branching the member binaries
//    individually; bench/minlp_sos reproduces that ablation).
//
// Because the HSLB performance functions are convex (a, b, d >= 0, c >= 1),
// the method terminates with a *proven global* optimum, the property the
// paper highlights as the key feature of the branch-and-bound approach.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "minlp/kelley.hpp"
#include "minlp/model.hpp"

namespace hslb::minlp {

enum class BnbStatus {
  Optimal,        ///< tree exhausted, incumbent is the global optimum
  Infeasible,     ///< tree exhausted without any feasible point
  NodeLimit,      ///< stopped early; incumbent (if any) has `gap` slack
  TimeLimit,
};

std::string to_string(BnbStatus s);

/// How the fractional integer variable to branch on is chosen.
enum class BranchRule {
  MostFractional,  ///< value farthest from an integer (simple, default)
  PseudoCost,      ///< history-weighted degradation estimates
};

struct BnbOptions {
  double int_tol = 1e-6;        ///< integrality tolerance
  double feas_tol = 1e-7;       ///< nonlinear feasibility tolerance (relative)
  double gap_tol = 1e-9;        ///< absolute incumbent-vs-bound pruning slack
  std::size_t max_nodes = 200000;
  double time_limit_seconds = 300.0;
  bool use_sos_branching = true;  ///< false: branch member binaries directly
  BranchRule branch_rule = BranchRule::MostFractional;
  std::size_t max_passes_per_node = 50;  ///< QG cut-and-resolve passes
  KelleyOptions kelley;         ///< used for root & fixed-integer NLP solves
};

struct BnbResult {
  BnbStatus status = BnbStatus::Infeasible;
  double objective = 0.0;       ///< incumbent objective (valid if has_solution)
  std::vector<double> x;        ///< incumbent point
  bool has_solution = false;
  double best_bound = 0.0;      ///< proven lower bound on the optimum
  double gap = 0.0;             ///< objective - best_bound (0 when Optimal)
  // Statistics.
  std::size_t nodes = 0;
  std::size_t lp_solves = 0;
  std::size_t nlp_solves = 0;
  std::size_t cuts = 0;
  double seconds = 0.0;
};

/// Solves a convex MINLP to global optimality. Every variable must have
/// finite bounds (the HSLB model builders guarantee this; violations throw).
BnbResult solve(const Model& model, const BnbOptions& options = {});

}  // namespace hslb::minlp
