// LP/NLP-based branch-and-bound for convex MINLPs (Quesada-Grossmann),
// following the algorithm description in §III-E of the paper:
//
//  * an initial MILP relaxation is built from linearizations at the solution
//    of the continuous NLP relaxation;
//  * the tree search solves LP relaxations; fractional solutions are
//    branched on; integral solutions that violate a nonlinear constraint
//    get fresh outer-approximation cuts and the node is re-solved;
//  * integral solutions feasible for all nonlinear constraints become
//    incumbents;
//  * special-ordered sets are branched on as sets (the paper reports this is
//    ~two orders of magnitude faster than branching the member binaries
//    individually; bench/minlp_sos reproduces that ablation).
//
// Because the HSLB performance functions are convex (a, b, d >= 0, c >= 1),
// the method terminates with a *proven global* optimum, the property the
// paper highlights as the key feature of the branch-and-bound approach.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "minlp/kelley.hpp"
#include "minlp/model.hpp"

namespace hslb::minlp {

enum class BnbStatus {
  Optimal,        ///< tree exhausted, incumbent is the global optimum
  Infeasible,     ///< tree exhausted without any feasible point
  NodeLimit,      ///< stopped early; incumbent (if any) has `gap` slack
  TimeLimit,
};

std::string to_string(BnbStatus s);

/// How the fractional integer variable to branch on is chosen.
enum class BranchRule {
  MostFractional,  ///< value farthest from an integer (simple, default)
  PseudoCost,      ///< history-weighted degradation estimates
};

struct BnbOptions {
  double int_tol = 1e-6;        ///< integrality tolerance
  double feas_tol = 1e-7;       ///< nonlinear feasibility tolerance (relative)
  double gap_tol = 1e-9;        ///< absolute incumbent-vs-bound pruning slack
  std::size_t max_nodes = 200000;
  double time_limit_seconds = 300.0;
  bool use_sos_branching = true;  ///< false: branch member binaries directly
  BranchRule branch_rule = BranchRule::MostFractional;
  std::size_t max_passes_per_node = 50;  ///< QG cut-and-resolve passes
  KelleyOptions kelley;         ///< used for root & fixed-integer NLP solves
  /// Threads for node LP re-solves (1 = serial, 0 = hardware concurrency).
  /// The search — incumbent, bound, branching sequence, node count — is
  /// bit-identical for every value: nodes are expanded in synchronized
  /// best-bound waves whose composition depends only on `wave_size`, and
  /// wave outcomes are merged in deterministic wave order.
  std::size_t solver_threads = 1;
  /// Nodes per synchronized wave. Part of the search definition (NOT a
  /// tuning knob tied to the thread count): changing it changes which nodes
  /// are expanded, independently of solver_threads.
  std::size_t wave_size = 16;
  /// Warm-start node LPs from the parent basis (dual-simplex repair).
  /// Results are identical either way; disable only for benchmarking.
  bool warm_start = true;
  /// Run the LP diving primal heuristic at fractional nodes whose bound
  /// still undercuts the incumbent (finds incumbents early on wide integer
  /// boxes where LP vertices are rarely integral).
  bool heuristic_dives = true;
  /// Strong-branching candidates probed per fractional node (0 disables).
  /// Probes solve both child LPs warm from the node basis, so this only
  /// takes effect when `warm_start` is on.
  std::size_t strong_branch_candidates = 0;
  /// Run the LP presolve (lp::Presolve) on cold solves: the root relaxation
  /// and every node LP whose warm start is rejected. Warm re-solves bypass
  /// it — their cost is a handful of dual pivots already.
  bool presolve = true;
  /// Consecutive slack observations before an OA cut is retired from node
  /// LPs (0 keeps every cut forever). Retired cuts stay in the pool and
  /// reactivate on violation, so bounds are never weakened silently.
  std::size_t cut_age_limit = 12;

  // -- Cross-solve warm seeding (closed-loop re-solves) ---------------------
  // A rebalance controller re-solves a model that differs from the previous
  // solve only in bounds, a budget row, or slightly-refitted nonlinear
  // constraints. Seeding the new search with what the previous one learned
  // prunes most of the tree up front.

  /// Candidate incumbent checked against the *new* model before the root
  /// solve (sized num_vars; empty = none). An infeasible seed is silently
  /// rejected — seeding can never produce a wrong answer, only pruning.
  std::vector<double> seed_incumbent;

  /// Cuts from a previous solve's pool, inserted before the root solve.
  /// Only valid when the nonlinear constraints are UNCHANGED (bounds and
  /// linear rows may differ — OA cuts do not depend on them); the caller
  /// guarantees this.
  std::vector<Cut> seed_cuts;

  /// Points to re-linearize at: one fresh OA cut per nonlinear constraint
  /// per point, generated against the new model — valid by convexity even
  /// when the constraints were refitted since the cuts' source solve.
  std::vector<std::vector<double>> seed_points;
};

struct BnbResult {
  BnbStatus status = BnbStatus::Infeasible;
  double objective = 0.0;       ///< incumbent objective (valid if has_solution)
  std::vector<double> x;        ///< incumbent point
  bool has_solution = false;
  double best_bound = 0.0;      ///< proven lower bound on the optimum
  double gap = 0.0;             ///< objective - best_bound (0 when Optimal)
  double rel_gap = 0.0;         ///< gap / max(1, |objective|) (0 when Optimal)
  // Statistics.
  std::size_t nodes = 0;
  std::size_t lp_solves = 0;
  std::size_t nlp_solves = 0;
  std::size_t cuts = 0;
  double seconds = 0.0;
  std::size_t lp_pivots = 0;       ///< simplex pivots over every LP solve
  std::size_t tree_lp_pivots = 0;  ///< pivots excluding the root relaxation
  std::size_t warm_solves = 0;     ///< LP solves that reused a prior basis
  std::size_t waves = 0;           ///< synchronized node waves executed
  /// Sparsity and presolve counters summed over every LP solve of the
  /// search (root relaxation, node re-solves, dives, strong-branch probes).
  lp::SolveStats lp_stats;
  // Domain propagation and cut lifecycle counters.
  std::size_t bounds_tightened = 0;  ///< propagation bound improvements
  std::size_t nodes_propagated_infeasible = 0;  ///< pruned before any LP
  std::size_t cuts_retired = 0;      ///< pool cuts aged out of node LPs
  std::size_t cuts_reactivated = 0;  ///< retired cuts pulled back on violation
  /// The final cut pool, exported for seeding a later warm re-solve
  /// (BnbOptions::seed_cuts) when the nonlinear constraints are unchanged.
  std::vector<Cut> pool_cuts;
  /// True when BnbOptions::seed_incumbent passed the feasibility audit
  /// against this model and became the starting incumbent. False when no
  /// seed was given or the audit rejected it — callers (the allocation
  /// service) use this to distinguish a genuinely warm solve from a silent
  /// fallback to cold.
  bool seed_accepted = false;
};

/// Propagates the node's bound overrides through the model's linear rows
/// (activity-based implied bounds, rounded on integer variables) and SOS1
/// sets (a forced-nonzero member fixes its siblings to zero). Tightens
/// `bounds` in place; `tightened`, when non-null, accumulates the number of
/// improvements. Returns false when some domain empties — the node is
/// infeasible without a single LP solve.
bool propagate_bounds(const Model& model, BoundOverrides& bounds,
                      double int_tol, std::size_t max_passes = 4,
                      std::size_t* tightened = nullptr);

/// Solves a convex MINLP to global optimality. Every variable must have
/// finite bounds (the HSLB model builders guarantee this; violations throw).
BnbResult solve(const Model& model, const BnbOptions& options = {});

}  // namespace hslb::minlp
