// Kelley cutting-plane solver for the *continuous* convex relaxation of a
// MINLP (integrality dropped, SOS1 dropped).
//
// Iterates: solve the LP made of the linear constraints plus all OA cuts;
// if some nonlinear constraint is violated at the LP optimum, linearize it
// there and repeat. For convex constraints over a bounded box this
// converges to the NLP optimum — it fills the role filterSQP plays under
// MINOTAUR for this problem class (every NLP we solve is convex).
#pragma once

#include <optional>
#include <vector>

#include "lp/simplex.hpp"
#include "minlp/cuts.hpp"
#include "minlp/model.hpp"

namespace hslb::minlp {

struct KelleyOptions {
  double feas_tol = 1e-7;       ///< max allowed nonlinear violation (relative)
  std::size_t max_rounds = 200; ///< LP solves before giving up
  lp::Options lp;               ///< inner simplex options
};

struct KelleyResult {
  enum class Status { Optimal, Infeasible, RoundLimit } status;
  double objective = 0.0;
  std::vector<double> x;
  std::size_t lp_solves = 0;
  std::size_t cuts_added = 0;
  std::size_t lp_pivots = 0;  ///< simplex pivots summed over all rounds
  lp::SolveStats lp_stats;    ///< sparsity counters summed over all rounds
  /// Final LP basis (rows = model linear rows, then the pool cuts present
  /// when the last round solved). Reusable as a warm start for any later
  /// relaxation whose rows extend that prefix.
  lp::Basis basis;
};

/// Per-variable bound overrides used by branch-and-bound nodes; an entry of
/// std::nullopt keeps the model bound.
struct BoundOverrides {
  std::vector<std::optional<double>> lower, upper;

  explicit BoundOverrides(std::size_t n) : lower(n), upper(n) {}
  double lb(const Model& m, std::size_t v) const {
    return lower[v] ? *lower[v] : m.lower(v);
  }
  double ub(const Model& m, std::size_t v) const {
    return upper[v] ? *upper[v] : m.upper(v);
  }
};

/// Builds the LP relaxation (linear rows + the ledger's cut layout) with
/// the given bound overrides. Shared by Kelley and branch-and-bound.
lp::Model build_lp_relaxation(const Model& model, const CutLedger& ledger,
                              const BoundOverrides& bounds);

/// Builds the LP relaxation over the pool's *active* cuts (ascending id).
lp::Model build_lp_relaxation(const Model& model, const CutPool& pool,
                              const BoundOverrides& bounds);

/// Solves the continuous relaxation against a node ledger; cuts gained
/// along the way land in the ledger (appended or reactivated), never in
/// the shared pool — the caller merges them in deterministic order.
KelleyResult solve_relaxation(const Model& model, CutLedger& ledger,
                              const BoundOverrides& bounds,
                              const KelleyOptions& options = {});

/// Solves the continuous relaxation; new cuts are appended to `pool` (they
/// are globally valid and reused by the caller's tree search) and retired
/// pool cuts found violated are reactivated.
KelleyResult solve_relaxation(const Model& model, CutPool& pool,
                              const BoundOverrides& bounds,
                              const KelleyOptions& options = {});

/// Convenience overload with no overrides.
KelleyResult solve_relaxation(const Model& model, CutPool& pool,
                              const KelleyOptions& options = {});

}  // namespace hslb::minlp
