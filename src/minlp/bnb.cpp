#include "minlp/bnb.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <optional>
#include <queue>
#include <span>
#include <unordered_map>
#include <utility>

#include "common/contracts.hpp"
#include "common/log.hpp"
#include "common/parallel.hpp"
#include "lp/simplex.hpp"

namespace hslb::minlp {

std::string to_string(BnbStatus s) {
  switch (s) {
    case BnbStatus::Optimal: return "optimal";
    case BnbStatus::Infeasible: return "infeasible";
    case BnbStatus::NodeLimit: return "node-limit";
    case BnbStatus::TimeLimit: return "time-limit";
  }
  return "?";
}

bool propagate_bounds(const Model& model, BoundOverrides& bounds,
                      double int_tol, std::size_t max_passes,
                      std::size_t* tightened) {
  const std::size_t n = model.num_vars();
  std::vector<double> lb(n), ub(n);
  for (std::size_t v = 0; v < n; ++v) {
    lb[v] = bounds.lb(model, v);
    ub[v] = bounds.ub(model, v);
    if (lb[v] > ub[v]) return false;
  }
  std::size_t improved = 0;
  auto rel = [](double v) { return 1.0 + std::fabs(v); };
  auto box_ok = [&](std::size_t v) {
    return lb[v] <= ub[v] + 1e-9 * rel(ub[v]);
  };
  // Tightens one side of v's box; integer domains round the implied value
  // inward. Returns false when the box empties.
  auto tighten = [&](std::size_t v, double val, bool is_lower) {
    if (!std::isfinite(val)) return true;
    if (model.is_integer(v))
      val = is_lower ? std::ceil(val - int_tol) : std::floor(val + int_tol);
    if (is_lower) {
      if (val > lb[v] + 1e-9 * rel(val)) {
        lb[v] = val;
        ++improved;
      }
    } else {
      if (val < ub[v] - 1e-9 * rel(val)) {
        ub[v] = val;
        ++improved;
      }
    }
    return box_ok(v);
  };

  bool changed = true;
  for (std::size_t pass = 0; pass < max_passes && changed; ++pass) {
    const std::size_t before = improved;
    changed = false;

    // Linear rows: with every other column at its extreme the row bound
    // caps how far each column can move (the node-level analogue of the
    // LP presolve's activity tightening, plus integer rounding).
    for (std::size_t r = 0; r < model.num_linear(); ++r) {
      const double rlb = model.linear_lower(r);
      const double rub = model.linear_upper(r);
      double amin = 0.0, amax = 0.0;
      std::size_t inf_min = 0, inf_max = 0;
      for (const auto& [v, c] : model.linear_coeffs(r)) {
        const double at_lo = c > 0.0 ? lb[v] : ub[v];
        const double at_hi = c > 0.0 ? ub[v] : lb[v];
        if (std::isfinite(at_lo)) amin += c * at_lo; else ++inf_min;
        if (std::isfinite(at_hi)) amax += c * at_hi; else ++inf_max;
      }
      if (inf_min == 0 && rub != kInf && amin > rub + 1e-7 * rel(rub))
        return false;
      if (inf_max == 0 && rlb != -kInf && amax < rlb - 1e-7 * rel(rlb))
        return false;
      for (const auto& [v, c] : model.linear_coeffs(r)) {
        const double cmin = c > 0.0 ? c * lb[v] : c * ub[v];
        const double cmax = c > 0.0 ? c * ub[v] : c * lb[v];
        if (rub != kInf) {
          const bool v_inf = !std::isfinite(cmin);
          if (inf_min == 0 || (inf_min == 1 && v_inf)) {
            const double rest = v_inf ? amin : amin - cmin;
            double val = (rub - rest) / c;
            val += (c > 0.0 ? 1.0 : -1.0) * 1e-9 * rel(val);
            if (!tighten(v, val, c < 0.0)) return false;
          }
        }
        if (rlb != -kInf) {
          const bool v_inf = !std::isfinite(cmax);
          if (inf_max == 0 || (inf_max == 1 && v_inf)) {
            const double rest = v_inf ? amax : amax - cmax;
            double val = (rlb - rest) / c;
            val -= (c > 0.0 ? 1.0 : -1.0) * 1e-9 * rel(val);
            if (!tighten(v, val, c > 0.0)) return false;
          }
        }
      }
    }

    // SOS1 sets: two members forced away from zero is infeasible; exactly
    // one forced member pins every sibling to zero.
    for (const Sos1& set : model.sos1()) {
      std::size_t forced = 0;
      for (const std::size_t v : set.vars) {
        if (lb[v] > int_tol || ub[v] < -int_tol) ++forced;
      }
      if (forced >= 2) return false;
      if (forced != 1) continue;
      for (const std::size_t v : set.vars) {
        if (lb[v] > int_tol || ub[v] < -int_tol) continue;  // the forced one
        if (lb[v] > 0.0) continue;  // zero is outside the (tiny) box: skip
        if (ub[v] > 0.0) {
          ub[v] = 0.0;
          ++improved;
        }
        if (lb[v] < 0.0) {
          lb[v] = 0.0;
          ++improved;
        }
      }
    }

    changed = improved != before;
  }

  for (std::size_t v = 0; v < n; ++v) {
    if (lb[v] != bounds.lb(model, v)) bounds.lower[v] = lb[v];
    if (ub[v] != bounds.ub(model, v)) bounds.upper[v] = ub[v];
  }
  if (tightened != nullptr) *tightened += improved;
  return true;
}

namespace {

struct BoundChange {
  std::size_t var;
  bool is_lower;
  double value;
};

struct Node {
  std::ptrdiff_t parent = -1;           ///< index into the node arena
  std::vector<BoundChange> changes;     ///< changes relative to parent
  double bound = -lp::kInf;             ///< parent LP objective (ordering key)
  // Pseudocost bookkeeping: which branching created this node.
  std::ptrdiff_t branch_var = -1;
  int branch_dir = 0;                   ///< +1 = up child, -1 = down child
  double branch_frac = 0.0;             ///< parent fractional distance moved
  /// Basis of the parent LP this node was branched from; warm-start seed
  /// for this node's first LP re-solve.
  lp::Basis basis;
  /// Pool cut ids of the basis's cut rows (rows beyond the linear ones), in
  /// row order. Keying the rows by id lets a child remap the seed onto its
  /// own wave's active-cut layout even after retirements/reactivations.
  std::vector<std::size_t> basis_cuts;
};

/// Heap entry: best-bound-first, FIFO among equal bounds for determinism.
struct HeapEntry {
  double bound;
  std::size_t order;
  std::size_t node;
  bool operator>(const HeapEntry& o) const {
    if (bound != o.bound) return bound > o.bound;
    return order > o.order;
  }
};

/// A child produced by branching, before it gets an arena slot.
struct ChildSpec {
  std::vector<BoundChange> changes;
  double bound;
  std::ptrdiff_t branch_var = -1;
  int branch_dir = 0;
  double branch_frac = 0.0;
};

/// Everything one node expansion wants to do to shared state, recorded by
/// the (read-only) worker and applied at the wave barrier in wave order so
/// the search is identical for every thread count.
struct Outcome {
  std::vector<ChildSpec> children;
  lp::Basis child_basis;  ///< basis of the branched LP, seed for children
  /// Cut layout of child_basis's cut rows (shared ids or appended indices,
  /// translated to final pool ids at merge time).
  std::vector<CutLedger::Ref> child_layout;
  std::vector<std::pair<double, std::vector<double>>> incumbents;  ///< obj, x
  std::vector<Cut> new_cuts;  ///< cuts appended beyond the wave-start layout
  std::vector<std::size_t> reactivated;  ///< retired pool ids found violated
  /// Per wave-start active cut: was it observed at an LP optimum of this
  /// node, and was it ever tight there? Feeds the pool's aging at merge.
  std::vector<char> cut_observed, cut_tight;
  std::optional<double> first_lp_obj;  ///< pass-0 objective (pseudocosts)
  std::size_t lp_solves = 0;
  std::size_t nlp_solves = 0;
  std::size_t lp_pivots = 0;
  std::size_t warm_solves = 0;
  std::size_t bounds_tightened = 0;   ///< domain-propagation improvements
  bool propagated_infeasible = false;  ///< fathomed before any LP solve
  lp::SolveStats lp_stats;
};

class Solver {
 public:
  Solver(const Model& model, const BnbOptions& opt) : model_(model), opt_(opt) {
    // Cold LP solves (root rounds, rejected warm starts, degenerate-vertex
    // guards) run through the LP presolve when enabled; warm re-solves
    // bypass it inside lp::solve.
    opt_.kelley.lp.presolve = opt_.presolve;
    for (std::size_t v = 0; v < model.num_vars(); ++v) {
      HSLB_EXPECTS(std::isfinite(model.lower(v)));
      HSLB_EXPECTS(std::isfinite(model.upper(v)));
    }
    pc_sum_up_.assign(model.num_vars(), 0.0);
    pc_cnt_up_.assign(model.num_vars(), 0.0);
    pc_sum_dn_.assign(model.num_vars(), 0.0);
    pc_cnt_dn_.assign(model.num_vars(), 0.0);
    // The integer columns are scanned on every node (branching candidates,
    // dive picks, QG fixings); on the selector-heavy layout models they are
    // a small slice of the variables, so cache the index list once.
    for (std::size_t v = 0; v < model.num_vars(); ++v) {
      if (model.is_integer(v)) int_vars_.push_back(v);
    }
  }

  BnbResult run() {
    const auto t0 = std::chrono::steady_clock::now();

    // Root domain propagation: tighten the global boxes through the linear
    // rows and SOS structure before the first relaxation is ever built.
    BoundOverrides root_bounds(model_.num_vars());
    if (!propagate_bounds(model_, root_bounds, opt_.int_tol, 4,
                          &result_.bounds_tightened)) {
      ++result_.nodes_propagated_infeasible;
      result_.status = BnbStatus::Infeasible;
      finish(t0);
      return result_;
    }

    // Cross-solve warm seeding: a previous solve's cut pool (valid when the
    // nonlinear constraints are unchanged), fresh linearizations at prior
    // solution points (valid by convexity even after a refit), and the
    // previous incumbent, feasibility-checked against *this* model. All
    // land before the root solve, so the root LP already carries them.
    for (const Cut& c : opt_.seed_cuts) pool_.insert(c);
    for (const auto& point : opt_.seed_points) {
      if (point.size() != model_.num_vars()) continue;
      for (std::size_t k = 0; k < model_.nonlinear().size(); ++k)
        pool_.insert(make_oa_cut(model_, k, point));
    }
    if (!opt_.seed_incumbent.empty() &&
        opt_.seed_incumbent.size() == model_.num_vars()) {
      maybe_update_incumbent(opt_.seed_incumbent,
                             model_.objective_value(opt_.seed_incumbent));
      // The audit outcome: an incumbent now means the seed survived the
      // feasibility check and the search starts warm.
      result_.seed_accepted = has_incumbent_;
    }

    // Root NLP relaxation: seeds the cut pool (the "initial linearization
    // point" of §III-E) and gives the first global bound.
    KelleyResult root = solve_relaxation(model_, pool_, root_bounds, opt_.kelley);
    result_.lp_solves += root.lp_solves;
    result_.lp_pivots += root.lp_pivots;
    result_.lp_stats.merge(root.lp_stats);
    result_.nlp_solves += 1;
    if (root.status == KelleyResult::Status::Infeasible) {
      result_.status = BnbStatus::Infeasible;
      finish(t0);
      return result_;
    }

    nodes_.push_back(Node{});
    nodes_.back().bound = root.objective;
    nodes_.back().basis = std::move(root.basis);
    // The root LP was built over the pool's active cuts in ascending id
    // order (seeded cuts included) and Kelley appends, so its basis cut
    // rows are exactly the active pool in insertion order.
    nodes_.back().basis_cuts = pool_.active_ids();
    heap_.push(HeapEntry{root.objective, next_order_++, 0});

    // Nodes are expanded in synchronized best-bound waves: a wave's nodes
    // are processed by read-only workers against the wave-start incumbent /
    // pseudocosts / cut pool, and their outcomes are merged at the barrier
    // in wave order. The wave composition depends only on wave_size, so the
    // whole search is bit-identical for every solver_threads value.
    ThreadPool threads(opt_.solver_threads);
    while (!heap_.empty()) {
      if (result_.nodes >= opt_.max_nodes) {
        result_.status = BnbStatus::NodeLimit;
        finish(t0);
        return result_;
      }
      if (elapsed(t0) > opt_.time_limit_seconds) {
        result_.status = BnbStatus::TimeLimit;
        finish(t0);
        return result_;
      }

      std::vector<std::size_t> wave;
      const std::size_t wave_cap = std::max<std::size_t>(1, opt_.wave_size);
      while (!heap_.empty() && wave.size() < wave_cap) {
        const HeapEntry top = heap_.top();
        // Best-bound order: once the top is prunable, so is everything
        // below it *right now* — stop filling, but keep the outer loop
        // going: merging this wave can push children with better bounds.
        if (has_incumbent_ && top.bound >= incumbent_obj_ - opt_.gap_tol)
          break;
        heap_.pop();
        wave.push_back(top.node);
      }
      if (wave.empty()) break;  // the whole frontier is prunable: done
      result_.nodes += wave.size();
      ++result_.waves;

      // Snapshot of the active-cut layout every node of this wave solves
      // against; lifecycle changes apply at the merge barrier only, so the
      // snapshot (and the whole search) is thread-count independent.
      const std::vector<std::size_t> wave_active = pool_.active_ids();
      std::vector<Outcome> outcomes(wave.size());
      threads.parallel_for(wave.size(), [&](std::size_t i) {
        outcomes[i] = process(wave[i], wave_active);
      });
      for (std::size_t i = 0; i < wave.size(); ++i)
        merge(wave[i], wave_active, std::move(outcomes[i]));
    }

    result_.status = has_incumbent_ ? BnbStatus::Optimal : BnbStatus::Infeasible;
    finish(t0);
    return result_;
  }

 private:
  static double elapsed(std::chrono::steady_clock::time_point t0) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
        .count();
  }

  void finish(std::chrono::steady_clock::time_point t0) {
    result_.seconds = elapsed(t0);
    result_.cuts = pool_.size();
    result_.cuts_retired = pool_.retired_total();
    result_.cuts_reactivated = pool_.reactivated_total();
    result_.pool_cuts = pool_.cuts();
    if (has_incumbent_) {
      result_.objective = incumbent_obj_;
      result_.x = incumbent_;
      result_.has_solution = true;
    }
    // Remaining proven bound: min over open nodes, or the incumbent itself.
    double bound = has_incumbent_ ? incumbent_obj_ : lp::kInf;
    auto heap_copy = heap_;
    while (!heap_copy.empty()) {
      bound = std::min(bound, heap_copy.top().bound);
      heap_copy.pop();
    }
    if (result_.status == BnbStatus::Optimal && has_incumbent_) bound = incumbent_obj_;
    result_.best_bound = bound;
    result_.gap = has_incumbent_ && std::isfinite(bound)
                      ? std::max(0.0, incumbent_obj_ - bound)
                      : lp::kInf;
    if (result_.status == BnbStatus::Optimal) result_.gap = 0.0;
    result_.rel_gap =
        result_.has_solution
            ? result_.gap / std::max(1.0, std::fabs(result_.objective))
            : result_.gap;
  }

  BoundOverrides materialize(std::size_t node) const {
    BoundOverrides b(model_.num_vars());
    // Walk to root collecting the chain, then apply root-to-leaf so that
    // deeper (tighter) changes win.
    std::vector<std::size_t> chain;
    for (std::ptrdiff_t i = static_cast<std::ptrdiff_t>(node); i >= 0;
         i = nodes_[static_cast<std::size_t>(i)].parent)
      chain.push_back(static_cast<std::size_t>(i));
    for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
      for (const BoundChange& ch : nodes_[*it].changes) {
        if (ch.is_lower)
          b.lower[ch.var] = ch.value;
        else
          b.upper[ch.var] = ch.value;
      }
    }
    return b;
  }

  void maybe_update_incumbent(const std::vector<double>& x, double obj) {
    // Defense in depth: LP round-off (notably phase-1 residues shifted into
    // heavily-scaled rows) can surface points that violate a linear row;
    // an incumbent must be feasible for the *true* model.
    if (!model_.is_feasible(x, 10 * opt_.feas_tol, 2 * opt_.int_tol)) {
      log::debug() << "bnb: rejecting infeasible incumbent candidate";
      return;
    }
    if (!has_incumbent_ || obj < incumbent_obj_ - 1e-12 * (1.0 + std::fabs(obj))) {
      has_incumbent_ = true;
      incumbent_obj_ = obj;
      incumbent_ = x;
      log::debug() << "bnb: incumbent " << obj << " after " << result_.nodes
                   << " nodes, " << pool_.size() << " cuts";
    }
  }

  /// Fractional integer variable chosen by the configured branch rule,
  /// or nullopt if all are integral.
  std::optional<std::size_t> pick_branch_var(const std::vector<double>& x) const {
    std::optional<std::size_t> best;
    double best_score = -1.0;
    for (const std::size_t v : int_vars_) {
      const double frac = x[v] - std::floor(x[v]);
      const double dist = std::min(frac, 1.0 - frac);
      if (dist <= opt_.int_tol) continue;
      double score = dist;  // most-fractional default
      if (opt_.branch_rule == BranchRule::PseudoCost) {
        // Classic product rule with history-averaged unit degradations;
        // variables without history fall back to the global average.
        const double up = pc_cnt_up_[v] > 0.0 ? pc_sum_up_[v] / pc_cnt_up_[v]
                                              : global_pc();
        const double dn = pc_cnt_dn_[v] > 0.0 ? pc_sum_dn_[v] / pc_cnt_dn_[v]
                                              : global_pc();
        constexpr double kEps = 1e-6;
        score = std::max(up * (1.0 - frac), kEps) * std::max(dn * frac, kEps);
      }
      if (score > best_score) {
        best_score = score;
        best = v;
      }
    }
    return best;
  }

  double global_pc() const {
    const double cnt = pc_total_cnt_;
    return cnt > 0.0 ? pc_total_sum_ / cnt : 1.0;
  }

  /// Records the observed degradation of a child node's first LP solve
  /// relative to its parent bound (pseudocost learning).
  void record_pseudocost(const Node& node, double child_obj) {
    if (node.branch_var < 0 || node.branch_frac <= opt_.int_tol) return;
    const double degradation =
        std::max(0.0, child_obj - node.bound) / node.branch_frac;
    const auto v = static_cast<std::size_t>(node.branch_var);
    if (node.branch_dir > 0) {
      pc_sum_up_[v] += degradation;
      pc_cnt_up_[v] += 1.0;
    } else {
      pc_sum_dn_[v] += degradation;
      pc_cnt_dn_[v] += 1.0;
    }
    pc_total_sum_ += degradation;
    pc_total_cnt_ += 1.0;
  }

  /// Most violated SOS1 set (mass outside the largest member), if any.
  std::optional<std::size_t> violated_sos(const std::vector<double>& x) const {
    std::optional<std::size_t> best;
    double best_excess = opt_.int_tol;
    for (std::size_t s = 0; s < model_.sos1().size(); ++s) {
      const auto& set = model_.sos1()[s];
      double total = 0.0, largest = 0.0;
      std::size_t nonzero = 0;
      for (std::size_t v : set.vars) {
        const double a = std::fabs(x[v]);
        total += a;
        largest = std::max(largest, a);
        if (a > opt_.int_tol) ++nonzero;
      }
      if (nonzero <= 1) continue;
      const double excess = total - largest;
      if (excess > best_excess) {
        best_excess = excess;
        best = s;
      }
    }
    return best;
  }

  void branch_sos(std::size_t sos_idx, const std::vector<double>& x,
                  double bound, Outcome& out) const {
    const Sos1& set = model_.sos1()[sos_idx];
    // Split at the weighted mean of the active members, clamped so that each
    // side keeps at least one member free.
    double mass = 0.0, wsum = 0.0;
    for (std::size_t i = 0; i < set.vars.size(); ++i) {
      const double a = std::fabs(x[set.vars[i]]);
      mass += a;
      wsum += a * set.weights[i];
    }
    HSLB_ASSERT(mass > 0.0);
    const double pivot = wsum / mass;
    std::size_t split = 1;  // first index on the right side
    while (split < set.vars.size() && set.weights[split] <= pivot) ++split;
    split = std::clamp<std::size_t>(split, 1, set.vars.size() - 1);

    ChildSpec left, right;
    left.bound = right.bound = bound;
    for (std::size_t i = split; i < set.vars.size(); ++i)
      left.changes.push_back({set.vars[i], false, 0.0});  // right half to 0
    for (std::size_t i = 0; i < split; ++i)
      right.changes.push_back({set.vars[i], false, 0.0});  // left half to 0
    out.children.push_back(std::move(left));
    out.children.push_back(std::move(right));
  }

  void branch_integer(std::size_t var, const std::vector<double>& x,
                      double bound, Outcome& out) const {
    const double v = x[var];
    const double frac = v - std::floor(v);
    ChildSpec down;  // x <= floor
    down.bound = bound;
    down.changes = {{var, false, std::floor(v)}};
    down.branch_var = static_cast<std::ptrdiff_t>(var);
    down.branch_dir = -1;
    down.branch_frac = frac;
    ChildSpec up;  // x >= ceil
    up.bound = bound;
    up.changes = {{var, true, std::ceil(v)}};
    up.branch_var = static_cast<std::ptrdiff_t>(var);
    up.branch_dir = +1;
    up.branch_frac = 1.0 - frac;
    out.children.push_back(std::move(down));
    out.children.push_back(std::move(up));
  }

  /// Strong branching with warm probes: evaluates the most fractional
  /// candidates by solving both child LPs warm from the node basis (a few
  /// dual-simplex pivots each) and picks the variable whose worse child
  /// moves the bound the most — the classic plateau breaker. Returns
  /// nullopt when no candidate actually moves the bound.
  std::optional<std::size_t> strong_branch(const lp::Model& relax,
                                           const std::vector<double>& x,
                                           const lp::Basis& basis,
                                           Outcome& out) const {
    const std::size_t kCandidates = opt_.strong_branch_candidates;
    // Most fractional first, index ascending among ties (determinism).
    std::vector<std::pair<double, std::size_t>> frac;
    for (const std::size_t v : int_vars_) {
      const double f = x[v] - std::floor(x[v]);
      const double dist = std::min(f, 1.0 - f);
      if (dist > opt_.int_tol) frac.emplace_back(-dist, v);
    }
    std::sort(frac.begin(), frac.end());
    if (frac.size() > kCandidates) frac.resize(kCandidates);

    std::optional<std::size_t> best;
    double best_score = -lp::kInf;
    for (const auto& [neg_dist, v] : frac) {
      double worse_gain = lp::kInf;
      for (const bool down : {true, false}) {
        lp::Model child = relax;
        if (down)
          child.set_col_upper(v, std::floor(x[v]));
        else
          child.set_col_lower(v, std::ceil(x[v]));
        lp::Options lp_opt = opt_.kelley.lp;
        lp_opt.warm_start = &basis;
        const lp::Solution sol = lp::solve(child, lp_opt);
        ++out.lp_solves;
        out.lp_pivots += sol.iterations;
        out.lp_stats.merge(sol.stats);
        if (sol.warm_started) ++out.warm_solves;
        // An infeasible child is the best possible outcome: that side
        // disappears outright.
        const double gain = sol.status == lp::Status::Optimal
                                ? sol.objective
                                : lp::kInf;
        worse_gain = std::min(worse_gain, gain);
      }
      // score = bound of the weaker child; kInf means both sides prune.
      // First-wins on ties keeps the choice deterministic (candidate order
      // is fixed: most fractional first, then index).
      if (worse_gain > best_score + 1e-12) {
        best_score = worse_gain;
        best = v;
      }
      if (worse_gain == lp::kInf) break;  // cannot do better
    }
    return best;
  }

  /// LP diving heuristic: starting from a fractional relaxation point,
  /// repeatedly fix the most fractional integer to its nearest value and
  /// warm re-solve (each step is a single bound change, so the dual-simplex
  /// repair makes these nearly free); when the point goes integral, the
  /// fixed-integer NLP completes it into an incumbent candidate.
  void round_and_complete(const lp::Model& relax, const std::vector<double>& x0,
                          const lp::Basis& basis0, const BoundOverrides& bounds,
                          CutLedger& local, Outcome& out) const {
    lp::Model dive = relax;
    std::vector<double> x = x0;
    lp::Basis basis = basis0;
    // Each step pins at least one variable, so #fractional picks bounds the
    // loop; the hard cap keeps a pathological model from stalling a node.
    constexpr std::size_t kMaxDiveSteps = 128;

    for (std::size_t step = 0; step < kMaxDiveSteps; ++step) {
      // A violated SOS set is dived as a unit — pin everything but its
      // dominant member to zero in one step. Per-binary diving would cost
      // hundreds of LP solves on the selector-heavy layout models.
      if (const auto s = violated_sos(x)) {
        const Sos1& set = model_.sos1()[*s];
        std::size_t keep = set.vars[0];
        double keep_mass = -1.0;
        for (std::size_t v : set.vars) {
          if (std::fabs(x[v]) > keep_mass) {
            keep_mass = std::fabs(x[v]);
            keep = v;
          }
        }
        lp::Model trial = dive;
        for (std::size_t v : set.vars) {
          if (v != keep) trial.set_col_upper(v, 0.0);
        }
        lp::Options lp_opt = opt_.kelley.lp;
        if (opt_.warm_start && !basis.empty()) lp_opt.warm_start = &basis;
        lp::Solution sol = lp::solve(trial, lp_opt);
        ++out.lp_solves;
        out.lp_pivots += sol.iterations;
        out.lp_stats.merge(sol.stats);
        if (sol.warm_started) ++out.warm_solves;
        if (sol.status != lp::Status::Optimal) return;  // abandon the dive
        if (has_incumbent_ && sol.objective >= incumbent_obj_ - opt_.gap_tol)
          return;
        dive = std::move(trial);
        x = std::move(sol.x);
        basis = std::move(sol.basis);
        continue;
      }

      // Least fractional unfixed integer first: those fixes barely move the
      // relaxation, so the genuinely contested variables are decided last,
      // when the LP has the most information. None left means the dive
      // point is integral and ready for NLP completion.
      std::optional<std::size_t> pick;
      double best_dist = 1.0;
      for (const std::size_t v : int_vars_) {
        if (dive.col_lower(v) == dive.col_upper(v)) continue;
        const double frac = x[v] - std::floor(x[v]);
        const double dist = std::min(frac, 1.0 - frac);
        if (dist > opt_.int_tol && dist < best_dist) {
          best_dist = dist;
          pick = v;
        }
      }
      if (!pick) break;

      // Steepest descent between the two roundings: fixing against the
      // objective's pull (e.g. shrinking the binding task of a min-max
      // model) compounds over a whole dive into a useless incumbent.
      bool stepped = false;
      double best_obj = lp::kInf;
      lp::Model best_model;
      lp::Solution best_sol;
      for (const double r : {std::floor(x[*pick]), std::ceil(x[*pick])}) {
        if (r < dive.col_lower(*pick) || r > dive.col_upper(*pick)) continue;
        lp::Model trial = dive;
        trial.set_col_lower(*pick, r);
        trial.set_col_upper(*pick, r);
        lp::Options lp_opt = opt_.kelley.lp;
        if (opt_.warm_start && !basis.empty()) lp_opt.warm_start = &basis;
        lp::Solution sol = lp::solve(trial, lp_opt);
        ++out.lp_solves;
        out.lp_pivots += sol.iterations;
        out.lp_stats.merge(sol.stats);
        if (sol.warm_started) ++out.warm_solves;
        if (sol.status != lp::Status::Optimal) continue;
        if (sol.objective < best_obj) {
          best_obj = sol.objective;
          best_model = std::move(trial);
          best_sol = std::move(sol);
          stepped = true;
        }
      }
      if (!stepped) return;  // both roundings infeasible: abandon the dive
      // The dive objective only rises as variables get pinned, and the NLP
      // completion is tighter still — once it crosses the incumbent the
      // rest of the dive cannot produce an improvement.
      if (has_incumbent_ && best_obj >= incumbent_obj_ - opt_.gap_tol) return;
      dive = std::move(best_model);
      x = std::move(best_sol.x);
      basis = std::move(best_sol.basis);
    }

    // Fix every integer at the dived point and complete with the NLP.
    BoundOverrides fixed = bounds;
    for (const std::size_t v : int_vars_) {
      const double r = std::clamp(std::round(x[v]), bounds.lb(model_, v),
                                  bounds.ub(model_, v));
      fixed.lower[v] = r;
      fixed.upper[v] = r;
    }
    KelleyOptions nlp_opt = opt_.kelley;
    if (opt_.warm_start && !basis.empty()) nlp_opt.lp.warm_start = &basis;
    KelleyResult nlp = solve_relaxation(model_, local, fixed, nlp_opt);
    out.lp_solves += nlp.lp_solves;
    out.lp_pivots += nlp.lp_pivots;
    out.lp_stats.merge(nlp.lp_stats);
    ++out.nlp_solves;
    if (nlp.status == KelleyResult::Status::Optimal &&
        model_.is_feasible(nlp.x, 10 * opt_.feas_tol, opt_.int_tol)) {
      out.incumbents.emplace_back(nlp.objective, nlp.x);
    }
  }

  /// Expands one node. Read-only with respect to shared state (safe to run
  /// concurrently within a wave); everything it wants to change is recorded
  /// in the returned Outcome.
  Outcome process(std::size_t node,
                  std::span<const std::size_t> wave_active) const {
    Outcome out;
    CutLedger ledger(pool_, wave_active);  // wave-start layout, private tail
    expand(node, ledger, wave_active, out);
    out.new_cuts = ledger.take_appended();
    out.reactivated = ledger.reactivated();
    return out;
  }

  /// Remaps the parent basis onto this wave's cut layout: linear rows map
  /// 1:1, cut rows are matched by pool id, and active cuts the parent never
  /// saw come in slack-basic. A parent cut row that was retired leaves with
  /// its (basic, since the cut was slack) slack variable, so the remapped
  /// basis usually stays a valid warm start; when it does not, init_warm
  /// rejects it and the node falls back to a cold (presolved) solve.
  lp::Basis remap_parent_basis(std::size_t node,
                               std::span<const std::size_t> wave_active) const {
    const Node& nd = nodes_[node];
    const lp::Basis& pb = nd.basis;
    if (pb.empty()) return {};
    const std::size_t nlin = model_.num_linear();
    if (pb.rows.size() != nlin + nd.basis_cuts.size()) return {};
    lp::Basis b;
    b.cols = pb.cols;
    b.rows.assign(pb.rows.begin(),
                  pb.rows.begin() + static_cast<std::ptrdiff_t>(nlin));
    std::unordered_map<std::size_t, lp::BasisStatus> by_id;
    for (std::size_t i = 0; i < nd.basis_cuts.size(); ++i)
      by_id.emplace(nd.basis_cuts[i], pb.rows[nlin + i]);
    for (const std::size_t id : wave_active) {
      const auto it = by_id.find(id);
      b.rows.push_back(it == by_id.end() ? lp::BasisStatus::Basic
                                         : it->second);
    }
    return b;
  }

  void expand(std::size_t node, CutLedger& ledger,
              std::span<const std::size_t> wave_active, Outcome& out) const {
    BoundOverrides bounds = materialize(node);
    // Domain propagation: push the branching decision through the linear
    // rows and SOS sets. An emptied domain fathoms the node before any
    // simplex work; surviving nodes get tighter child boxes for free.
    // (Infeasibility detection also keeps the relaxation's rows the plain
    // linear+cuts layout that warm-start basis snapshots assume.)
    if (!propagate_bounds(model_, bounds, opt_.int_tol, 4,
                          &out.bounds_tightened)) {
      out.propagated_infeasible = true;
      return;
    }

    // Build the relaxation once; QG passes only append their new cut rows.
    lp::Model relax = build_lp_relaxation(model_, ledger, bounds);
    std::size_t cuts_in_relax = ledger.num_cuts();
    const std::size_t nlin = model_.num_linear();
    lp::Basis basis = remap_parent_basis(node, wave_active);
    out.cut_observed.assign(wave_active.size(), 0);
    out.cut_tight.assign(wave_active.size(), 0);

    for (std::size_t pass = 0; pass < opt_.max_passes_per_node; ++pass) {
      for (std::size_t c = cuts_in_relax; c < ledger.num_cuts(); ++c) {
        relax.add_constraint(ledger.cut(c).coeffs, -lp::kInf,
                             ledger.cut(c).rhs, "oa");
      }
      cuts_in_relax = ledger.num_cuts();

      lp::Options lp_opt = opt_.kelley.lp;
      if (opt_.warm_start && !basis.empty()) lp_opt.warm_start = &basis;
      lp::Solution sol = lp::solve(relax, lp_opt);
      ++out.lp_solves;
      out.lp_pivots += sol.iterations;
      out.lp_stats.merge(sol.stats);
      if (sol.warm_started) ++out.warm_solves;

      if (sol.status == lp::Status::Infeasible) return;  // fathom
      HSLB_ASSERT(sol.status == lp::Status::Optimal);
      basis = sol.basis;
      if (pass == 0) out.first_lp_obj = sol.objective;
      // Activity observation for the pool's aging: a wave-start cut whose
      // slack is nonbasic at this optimum is tight (supporting the vertex);
      // one that stays basic-slack across a node's optima did no work here.
      for (std::size_t i = 0; i < wave_active.size(); ++i) {
        out.cut_observed[i] = 1;
        if (sol.basis.rows[nlin + i] != lp::BasisStatus::Basic)
          out.cut_tight[i] = 1;
      }
      // Fathom by bound against the wave-start incumbent (frozen for the
      // whole wave, so the decision is thread-count independent).
      if (has_incumbent_ && sol.objective >= incumbent_obj_ - opt_.gap_tol)
        return;

      // Retired cuts violated at this optimum come back into the LP before
      // any branching decision is made off the point (their absence is the
      // one way retirement could weaken a node bound).
      const double cut_tol =
          opt_.feas_tol * (1.0 + std::fabs(sol.objective));
      if (ledger.reactivate_violated(sol.x, cut_tol) > 0) continue;

      // Branch on SOS sets first: the paper found set branching on the
      // atmosphere allocation two orders of magnitude faster than binary
      // branching.
      auto sos = opt_.use_sos_branching ? violated_sos(sol.x)
                                        : std::optional<std::size_t>{};
      auto bv = sos ? std::optional<std::size_t>{} : pick_branch_var(sol.x);

      // Degenerate warm-vertex guard. On dual-degenerate models the warm
      // re-solve stops at whichever vertex of the optimal face the parent
      // basis repairs into — typically a *fractional* one, since the parent
      // basis keeps the branched integers basic. A cold solve from the slack
      // basis enters only improving columns and so lands on a vertex with
      // most integers sitting at their (integer) bounds; those vertices are
      // what feeds the Quesada-Grossmann step and produces incumbents. So
      // when a warm solve is about to integer-branch without having moved
      // the bound past its parent, re-solve cold and branch from that
      // vertex instead. SOS-branched nodes skip the guard: set branching
      // works off the mass distribution and keeps its warm speedup.
      const double parent_bound = nodes_[node].bound;
      if (bv && sol.warm_started &&
          sol.objective <=
              parent_bound + 1e-9 * (1.0 + std::fabs(parent_bound))) {
        lp::Solution cold = lp::solve(relax, opt_.kelley.lp);
        ++out.lp_solves;
        out.lp_pivots += cold.iterations;
        out.lp_stats.merge(cold.stats);
        if (cold.status == lp::Status::Optimal) {
          sol = std::move(cold);
          basis = sol.basis;
          sos = opt_.use_sos_branching ? violated_sos(sol.x)
                                       : std::optional<std::size_t>{};
          bv = sos ? std::optional<std::size_t>{} : pick_branch_var(sol.x);
        }
      }
      if (sos || bv) {
        // Primal rounding heuristic: without it, best-bound search has
        // nothing to prune with until an LP optimum happens to be integral,
        // and on wide integer boxes (many fractional variables per vertex)
        // that can take thousands of nodes. Fix the integers at the rounded
        // relaxation point and let the fixed-integer NLP complete it. Runs
        // while the node bound undercuts the wave-start incumbent by more
        // than 1%, so the incumbent chases the bound down and the cost
        // vanishes once they meet. Both inputs are frozen for the wave, so
        // the decision is thread-count independent.
        const bool worth_diving =
            opt_.heuristic_dives &&
            (!has_incumbent_ ||
             sol.objective <
                 incumbent_obj_ - 0.01 * (1.0 + std::fabs(incumbent_obj_)));
        if (worth_diving)
          round_and_complete(relax, sol.x, basis, bounds, ledger, out);
        if (sos) {
          branch_sos(*sos, sol.x, sol.objective, out);
        } else {
          // On dual-degenerate models most-fractional branching can walk a
          // plateau: the child LP re-optimizes to another vertex of the
          // same optimal face and the bound never moves. Warm re-solves
          // make probing the candidates nearly free, so look before
          // branching when warm starts are on.
          std::size_t var = *bv;
          if (opt_.strong_branch_candidates > 0 && opt_.warm_start &&
              !basis.empty())
            var = strong_branch(relax, sol.x, basis, out).value_or(*bv);
          branch_integer(var, sol.x, sol.objective, out);
        }
        out.child_basis = std::move(basis);
        // The basis's cut rows are the layout slots present in `relax`
        // (the dive may have grown the ledger past that).
        out.child_layout.assign(
            ledger.layout().begin(),
            ledger.layout().begin() +
                static_cast<std::ptrdiff_t>(cuts_in_relax));
        return;
      }

      // Integral (and SOS-feasible unless SOS branching is off; if it is
      // off, an integral point still satisfies SOS1 because the member
      // binaries are integral and tied by the sum-to-one row).
      const double scale = 1.0 + std::fabs(sol.objective);
      const double viol = model_.max_nonlinear_violation(sol.x);
      if (viol <= opt_.feas_tol * scale) {
        out.incumbents.emplace_back(sol.objective, sol.x);
        return;  // LP relaxation optimum is feasible: subtree solved
      }

      // Quesada-Grossmann step: solve the NLP with the integer assignment
      // fixed; a feasible completion becomes an incumbent and its cuts
      // tighten every node.
      BoundOverrides fixed = bounds;
      for (const std::size_t v : int_vars_) {
        const double r = std::round(sol.x[v]);
        fixed.lower[v] = r;
        fixed.upper[v] = r;
      }
      KelleyOptions nlp_opt = opt_.kelley;
      if (opt_.warm_start) nlp_opt.lp.warm_start = &basis;
      KelleyResult nlp = solve_relaxation(model_, ledger, fixed, nlp_opt);
      out.lp_solves += nlp.lp_solves;
      out.lp_pivots += nlp.lp_pivots;
      out.lp_stats.merge(nlp.lp_stats);
      ++out.nlp_solves;
      if (nlp.status == KelleyResult::Status::Optimal &&
          model_.is_feasible(nlp.x, 10 * opt_.feas_tol, opt_.int_tol)) {
        out.incumbents.emplace_back(nlp.objective, nlp.x);
      }

      // Ensure the current integral point itself is cut off before
      // re-solving; otherwise a numerically stalled pool would loop. Rows
      // gained by reactivating a retired duplicate count as progress too.
      const std::size_t added =
          ledger.add_violated(model_, sol.x, opt_.feas_tol * scale);
      if (added == 0 && nlp.cuts_added == 0) {
        log::warn() << "bnb: cut generation stalled (violation " << viol
                    << "); fathoming node";
        return;
      }
    }
    log::warn() << "bnb: node pass limit reached; fathoming";
  }

  /// Applies one node's outcome to shared state. Called at the wave barrier
  /// in wave order — the only place shared state mutates.
  void merge(std::size_t node, std::span<const std::size_t> wave_active,
             Outcome out) {
    result_.lp_solves += out.lp_solves;
    result_.nlp_solves += out.nlp_solves;
    result_.lp_pivots += out.lp_pivots;
    result_.tree_lp_pivots += out.lp_pivots;
    result_.warm_solves += out.warm_solves;
    result_.lp_stats.merge(out.lp_stats);
    result_.bounds_tightened += out.bounds_tightened;
    if (out.propagated_infeasible) ++result_.nodes_propagated_infeasible;
    if (out.first_lp_obj) record_pseudocost(nodes_[node], *out.first_lp_obj);

    // Cut lifecycle, applied in wave order: reactivations this node asked
    // for, then its fresh cuts (a duplicate of a retired cut reactivates
    // instead of copying), then its tight/slack observations age the
    // wave-start rows. `appended_ids` keeps the worker-local appended index
    // -> final pool id translation for the children's basis layouts.
    for (const std::size_t id : out.reactivated) pool_.reactivate(id);
    std::vector<std::size_t> appended_ids;
    appended_ids.reserve(out.new_cuts.size());
    for (Cut& c : out.new_cuts) {
      const std::size_t id = pool_.insert(std::move(c));
      pool_.reactivate(id);  // no-op unless it deduped onto a retired cut
      appended_ids.push_back(id);
    }
    for (std::size_t i = 0; i < out.cut_observed.size(); ++i) {
      if (out.cut_observed[i])
        pool_.observe(wave_active[i], out.cut_tight[i] != 0,
                      opt_.cut_age_limit);
    }

    std::vector<std::size_t> basis_cuts;
    basis_cuts.reserve(out.child_layout.size());
    for (const CutLedger::Ref& ref : out.child_layout) {
      basis_cuts.push_back(ref.is_appended ? appended_ids[ref.index]
                                           : ref.index);
    }
    for (ChildSpec& spec : out.children) {
      Node child;
      child.parent = static_cast<std::ptrdiff_t>(node);
      child.changes = std::move(spec.changes);
      child.bound = spec.bound;
      child.branch_var = spec.branch_var;
      child.branch_dir = spec.branch_dir;
      child.branch_frac = spec.branch_frac;
      child.basis = out.child_basis;
      child.basis_cuts = basis_cuts;
      nodes_.push_back(std::move(child));
      heap_.push(HeapEntry{spec.bound, next_order_++, nodes_.size() - 1});
    }
    for (auto& [obj, x] : out.incumbents) maybe_update_incumbent(x, obj);
  }

  const Model& model_;
  BnbOptions opt_;  ///< by value: the ctor folds `presolve` into kelley.lp
  CutPool pool_;
  std::vector<Node> nodes_;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>> heap_;
  std::size_t next_order_ = 0;
  BnbResult result_;
  bool has_incumbent_ = false;
  double incumbent_obj_ = 0.0;
  std::vector<double> incumbent_;
  std::vector<std::size_t> int_vars_;  ///< cached integer column indices
  // Pseudocost state (unit objective degradation per branching direction).
  std::vector<double> pc_sum_up_, pc_cnt_up_, pc_sum_dn_, pc_cnt_dn_;
  double pc_total_sum_ = 0.0;
  double pc_total_cnt_ = 0.0;
};

}  // namespace

BnbResult solve(const Model& model, const BnbOptions& options) {
  Solver s(model, options);
  return s.run();
}

}  // namespace hslb::minlp
