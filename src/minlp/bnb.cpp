#include "minlp/bnb.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <optional>
#include <queue>

#include "common/contracts.hpp"
#include "common/log.hpp"
#include "lp/simplex.hpp"

namespace hslb::minlp {

std::string to_string(BnbStatus s) {
  switch (s) {
    case BnbStatus::Optimal: return "optimal";
    case BnbStatus::Infeasible: return "infeasible";
    case BnbStatus::NodeLimit: return "node-limit";
    case BnbStatus::TimeLimit: return "time-limit";
  }
  return "?";
}

namespace {

struct BoundChange {
  std::size_t var;
  bool is_lower;
  double value;
};

struct Node {
  std::ptrdiff_t parent = -1;           ///< index into the node arena
  std::vector<BoundChange> changes;     ///< changes relative to parent
  double bound = -lp::kInf;             ///< parent LP objective (ordering key)
  // Pseudocost bookkeeping: which branching created this node.
  std::ptrdiff_t branch_var = -1;
  int branch_dir = 0;                   ///< +1 = up child, -1 = down child
  double branch_frac = 0.0;             ///< parent fractional distance moved
};

/// Heap entry: best-bound-first, FIFO among equal bounds for determinism.
struct HeapEntry {
  double bound;
  std::size_t order;
  std::size_t node;
  bool operator>(const HeapEntry& o) const {
    if (bound != o.bound) return bound > o.bound;
    return order > o.order;
  }
};

class Solver {
 public:
  Solver(const Model& model, const BnbOptions& opt) : model_(model), opt_(opt) {
    for (std::size_t v = 0; v < model.num_vars(); ++v) {
      HSLB_EXPECTS(std::isfinite(model.lower(v)));
      HSLB_EXPECTS(std::isfinite(model.upper(v)));
    }
    pc_sum_up_.assign(model.num_vars(), 0.0);
    pc_cnt_up_.assign(model.num_vars(), 0.0);
    pc_sum_dn_.assign(model.num_vars(), 0.0);
    pc_cnt_dn_.assign(model.num_vars(), 0.0);
  }

  BnbResult run() {
    const auto t0 = std::chrono::steady_clock::now();

    // Root NLP relaxation: seeds the cut pool (the "initial linearization
    // point" of §III-E) and gives the first global bound.
    KelleyResult root = solve_relaxation(model_, pool_, opt_.kelley);
    result_.lp_solves += root.lp_solves;
    result_.nlp_solves += 1;
    if (root.status == KelleyResult::Status::Infeasible) {
      result_.status = BnbStatus::Infeasible;
      finish(t0);
      return result_;
    }

    nodes_.push_back(Node{});
    nodes_.back().bound = root.objective;
    heap_.push(HeapEntry{root.objective, next_order_++, 0});

    while (!heap_.empty()) {
      if (result_.nodes >= opt_.max_nodes) {
        result_.status = BnbStatus::NodeLimit;
        finish(t0);
        return result_;
      }
      if (elapsed(t0) > opt_.time_limit_seconds) {
        result_.status = BnbStatus::TimeLimit;
        finish(t0);
        return result_;
      }

      const HeapEntry top = heap_.top();
      heap_.pop();
      if (has_incumbent_ && top.bound >= incumbent_obj_ - opt_.gap_tol) {
        // Best-bound order: everything remaining is also prunable.
        break;
      }
      ++result_.nodes;
      process(top.node);
    }

    result_.status = has_incumbent_ ? BnbStatus::Optimal : BnbStatus::Infeasible;
    finish(t0);
    return result_;
  }

 private:
  static double elapsed(std::chrono::steady_clock::time_point t0) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
        .count();
  }

  void finish(std::chrono::steady_clock::time_point t0) {
    result_.seconds = elapsed(t0);
    result_.cuts = pool_.size();
    if (has_incumbent_) {
      result_.objective = incumbent_obj_;
      result_.x = incumbent_;
      result_.has_solution = true;
    }
    // Remaining proven bound: min over open nodes, or the incumbent itself.
    double bound = has_incumbent_ ? incumbent_obj_ : lp::kInf;
    auto heap_copy = heap_;
    while (!heap_copy.empty()) {
      bound = std::min(bound, heap_copy.top().bound);
      heap_copy.pop();
    }
    if (result_.status == BnbStatus::Optimal && has_incumbent_) bound = incumbent_obj_;
    result_.best_bound = bound;
    result_.gap = has_incumbent_ && std::isfinite(bound)
                      ? std::max(0.0, incumbent_obj_ - bound)
                      : lp::kInf;
    if (result_.status == BnbStatus::Optimal) result_.gap = 0.0;
  }

  BoundOverrides materialize(std::size_t node) const {
    BoundOverrides b(model_.num_vars());
    // Walk to root collecting the chain, then apply root-to-leaf so that
    // deeper (tighter) changes win.
    std::vector<std::size_t> chain;
    for (std::ptrdiff_t i = static_cast<std::ptrdiff_t>(node); i >= 0;
         i = nodes_[static_cast<std::size_t>(i)].parent)
      chain.push_back(static_cast<std::size_t>(i));
    for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
      for (const BoundChange& ch : nodes_[*it].changes) {
        if (ch.is_lower)
          b.lower[ch.var] = ch.value;
        else
          b.upper[ch.var] = ch.value;
      }
    }
    return b;
  }

  void maybe_update_incumbent(const std::vector<double>& x, double obj) {
    // Defense in depth: LP round-off (notably phase-1 residues shifted into
    // heavily-scaled rows) can surface points that violate a linear row;
    // an incumbent must be feasible for the *true* model.
    if (!model_.is_feasible(x, 10 * opt_.feas_tol, 2 * opt_.int_tol)) {
      log::debug() << "bnb: rejecting infeasible incumbent candidate";
      return;
    }
    if (!has_incumbent_ || obj < incumbent_obj_ - 1e-12 * (1.0 + std::fabs(obj))) {
      has_incumbent_ = true;
      incumbent_obj_ = obj;
      incumbent_ = x;
      log::debug() << "bnb: incumbent " << obj << " after " << result_.nodes
                   << " nodes, " << pool_.size() << " cuts";
    }
  }

  /// Fractional integer variable chosen by the configured branch rule,
  /// or nullopt if all are integral.
  std::optional<std::size_t> pick_branch_var(const std::vector<double>& x) const {
    std::optional<std::size_t> best;
    double best_score = -1.0;
    for (std::size_t v = 0; v < model_.num_vars(); ++v) {
      if (!model_.is_integer(v)) continue;
      const double frac = x[v] - std::floor(x[v]);
      const double dist = std::min(frac, 1.0 - frac);
      if (dist <= opt_.int_tol) continue;
      double score = dist;  // most-fractional default
      if (opt_.branch_rule == BranchRule::PseudoCost) {
        // Classic product rule with history-averaged unit degradations;
        // variables without history fall back to the global average.
        const double up = pc_cnt_up_[v] > 0.0 ? pc_sum_up_[v] / pc_cnt_up_[v]
                                              : global_pc();
        const double dn = pc_cnt_dn_[v] > 0.0 ? pc_sum_dn_[v] / pc_cnt_dn_[v]
                                              : global_pc();
        constexpr double kEps = 1e-6;
        score = std::max(up * (1.0 - frac), kEps) * std::max(dn * frac, kEps);
      }
      if (score > best_score) {
        best_score = score;
        best = v;
      }
    }
    return best;
  }

  double global_pc() const {
    const double cnt = pc_total_cnt_;
    return cnt > 0.0 ? pc_total_sum_ / cnt : 1.0;
  }

  /// Records the observed degradation of a child node's first LP solve
  /// relative to its parent bound (pseudocost learning).
  void record_pseudocost(const Node& node, double child_obj) {
    if (node.branch_var < 0 || node.branch_frac <= opt_.int_tol) return;
    const double degradation =
        std::max(0.0, child_obj - node.bound) / node.branch_frac;
    const auto v = static_cast<std::size_t>(node.branch_var);
    if (node.branch_dir > 0) {
      pc_sum_up_[v] += degradation;
      pc_cnt_up_[v] += 1.0;
    } else {
      pc_sum_dn_[v] += degradation;
      pc_cnt_dn_[v] += 1.0;
    }
    pc_total_sum_ += degradation;
    pc_total_cnt_ += 1.0;
  }

  /// Most violated SOS1 set (mass outside the largest member), if any.
  std::optional<std::size_t> violated_sos(const std::vector<double>& x) const {
    std::optional<std::size_t> best;
    double best_excess = opt_.int_tol;
    for (std::size_t s = 0; s < model_.sos1().size(); ++s) {
      const auto& set = model_.sos1()[s];
      double total = 0.0, largest = 0.0;
      std::size_t nonzero = 0;
      for (std::size_t v : set.vars) {
        const double a = std::fabs(x[v]);
        total += a;
        largest = std::max(largest, a);
        if (a > opt_.int_tol) ++nonzero;
      }
      if (nonzero <= 1) continue;
      const double excess = total - largest;
      if (excess > best_excess) {
        best_excess = excess;
        best = s;
      }
    }
    return best;
  }

  void push_child(std::size_t parent, std::vector<BoundChange> changes,
                  double bound) {
    Node child;
    child.parent = static_cast<std::ptrdiff_t>(parent);
    child.changes = std::move(changes);
    child.bound = bound;
    nodes_.push_back(std::move(child));
    heap_.push(HeapEntry{bound, next_order_++, nodes_.size() - 1});
  }

  void branch_sos(std::size_t node, std::size_t sos_idx,
                  const std::vector<double>& x, double bound) {
    const Sos1& set = model_.sos1()[sos_idx];
    // Split at the weighted mean of the active members, clamped so that each
    // side keeps at least one member free.
    double mass = 0.0, wsum = 0.0;
    for (std::size_t i = 0; i < set.vars.size(); ++i) {
      const double a = std::fabs(x[set.vars[i]]);
      mass += a;
      wsum += a * set.weights[i];
    }
    HSLB_ASSERT(mass > 0.0);
    const double pivot = wsum / mass;
    std::size_t split = 1;  // first index on the right side
    while (split < set.vars.size() && set.weights[split] <= pivot) ++split;
    split = std::clamp<std::size_t>(split, 1, set.vars.size() - 1);

    std::vector<BoundChange> left, right;
    for (std::size_t i = split; i < set.vars.size(); ++i)
      left.push_back({set.vars[i], false, 0.0});  // right half pinned to 0
    for (std::size_t i = 0; i < split; ++i)
      right.push_back({set.vars[i], false, 0.0});  // left half pinned to 0
    push_child(node, std::move(left), bound);
    push_child(node, std::move(right), bound);
  }

  void branch_integer(std::size_t node, std::size_t var,
                      const std::vector<double>& x, double bound) {
    const double v = x[var];
    const double frac = v - std::floor(v);
    push_child(node, {{var, false, std::floor(v)}}, bound);  // x <= floor
    nodes_.back().branch_var = static_cast<std::ptrdiff_t>(var);
    nodes_.back().branch_dir = -1;
    nodes_.back().branch_frac = frac;
    push_child(node, {{var, true, std::ceil(v)}}, bound);    // x >= ceil
    nodes_.back().branch_var = static_cast<std::ptrdiff_t>(var);
    nodes_.back().branch_dir = +1;
    nodes_.back().branch_frac = 1.0 - frac;
  }

  void process(std::size_t node) {
    BoundOverrides bounds = materialize(node);

    for (std::size_t pass = 0; pass < opt_.max_passes_per_node; ++pass) {
      lp::Model relax = build_lp_relaxation(model_, pool_, bounds);
      const lp::Solution sol = lp::solve(relax, opt_.kelley.lp);
      ++result_.lp_solves;

      if (sol.status == lp::Status::Infeasible) return;  // fathom
      HSLB_ASSERT(sol.status == lp::Status::Optimal);
      if (pass == 0) record_pseudocost(nodes_[node], sol.objective);
      if (has_incumbent_ && sol.objective >= incumbent_obj_ - opt_.gap_tol)
        return;  // fathom by bound

      // Branch on SOS sets first: the paper found set branching on the
      // atmosphere allocation two orders of magnitude faster than binary
      // branching.
      if (opt_.use_sos_branching) {
        if (const auto s = violated_sos(sol.x)) {
          branch_sos(node, *s, sol.x, sol.objective);
          return;
        }
      }
      if (const auto v = pick_branch_var(sol.x)) {
        branch_integer(node, *v, sol.x, sol.objective);
        return;
      }

      // Integral (and SOS-feasible unless SOS branching is off; if it is
      // off, an integral point still satisfies SOS1 because the member
      // binaries are integral and tied by the sum-to-one row).
      const double scale = 1.0 + std::fabs(sol.objective);
      const double viol = model_.max_nonlinear_violation(sol.x);
      if (viol <= opt_.feas_tol * scale) {
        maybe_update_incumbent(sol.x, sol.objective);
        return;  // LP relaxation optimum is feasible: subtree solved
      }

      // Quesada-Grossmann step: solve the NLP with the integer assignment
      // fixed; a feasible completion becomes an incumbent and its cuts
      // tighten every node.
      BoundOverrides fixed = bounds;
      for (std::size_t v = 0; v < model_.num_vars(); ++v) {
        if (!model_.is_integer(v)) continue;
        const double r = std::round(sol.x[v]);
        fixed.lower[v] = r;
        fixed.upper[v] = r;
      }
      KelleyResult nlp = solve_relaxation(model_, pool_, fixed, opt_.kelley);
      result_.lp_solves += nlp.lp_solves;
      ++result_.nlp_solves;
      if (nlp.status == KelleyResult::Status::Optimal &&
          model_.is_feasible(nlp.x, 10 * opt_.feas_tol, opt_.int_tol)) {
        maybe_update_incumbent(nlp.x, nlp.objective);
      }

      // Ensure the current integral point itself is cut off before
      // re-solving; otherwise a numerically stalled pool would loop.
      const std::size_t added =
          pool_.add_violated(model_, sol.x, opt_.feas_tol * scale);
      if (added == 0 && nlp.cuts_added == 0) {
        log::warn() << "bnb: cut generation stalled (violation " << viol
                    << "); fathoming node";
        return;
      }
    }
    log::warn() << "bnb: node pass limit reached; fathoming";
  }

  const Model& model_;
  const BnbOptions& opt_;
  CutPool pool_;
  std::vector<Node> nodes_;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>> heap_;
  std::size_t next_order_ = 0;
  BnbResult result_;
  bool has_incumbent_ = false;
  double incumbent_obj_ = 0.0;
  std::vector<double> incumbent_;
  // Pseudocost state (unit objective degradation per branching direction).
  std::vector<double> pc_sum_up_, pc_cnt_up_, pc_sum_dn_, pc_cnt_dn_;
  double pc_total_sum_ = 0.0;
  double pc_total_cnt_ = 0.0;
};

}  // namespace

BnbResult solve(const Model& model, const BnbOptions& options) {
  Solver s(model, options);
  return s.run();
}

}  // namespace hslb::minlp
