// Mixed-integer nonlinear program (MINLP) model:
//
//   minimize    c^T x
//   subject to  rowlb <= A x <= rowub          (linear constraints)
//               f_k(x) <= 0                    (convex nonlinear constraints)
//               x_j integer for j in I
//               SOS1(S): at most one variable in S is nonzero
//               collb <= x <= colub
//
// Nonlinear objectives are expressed in epigraph form by the model builders
// (add variable t, minimize t, constrain f(x) - t <= 0), exactly as the
// paper's Table I does with its wall-clock variable T.
//
// This is the C++ analogue of the AMPL models in the paper; the solver in
// bnb.hpp plays MINOTAUR's role.
#pragma once

#include <functional>
#include <span>
#include <string>
#include <vector>

#include "lp/model.hpp"

namespace hslb::minlp {

using lp::kInf;

/// Sparse gradient entry of a nonlinear function.
struct GradEntry {
  std::size_t var;
  double value;
};

/// A smooth convex constraint f(x) <= 0 supplied as callbacks.
///
/// `vars` lists the variables f depends on; `value` and `gradient` receive
/// the *full* solution vector (indexed by model variable) and the gradient
/// callback returns entries only for `vars`.
struct NonlinearConstraint {
  std::string name;
  std::vector<std::size_t> vars;
  std::function<double(std::span<const double>)> value;
  std::function<std::vector<GradEntry>(std::span<const double>)> gradient;
  /// Optional human/AMPL-readable algebraic form, e.g.
  /// "27459.7/n_atm + 0.000193*n_atm^1.2285 + 43.73 - t_atm <= 0".
  /// Used by the AMPL exporter (see minlp/ampl.hpp); purely informational.
  std::string formula;
};

/// Special ordered set of type 1: at most one member variable nonzero.
/// `weights` give the branching order (e.g. the node counts O_k / A_k the
/// binary selects); must be strictly increasing.
struct Sos1 {
  std::string name;
  std::vector<std::size_t> vars;
  std::vector<double> weights;
};

class Model {
 public:
  /// Adds a continuous variable; returns its index.
  std::size_t add_continuous(double lb, double ub, std::string name = "");

  /// Adds an integer variable; returns its index.
  std::size_t add_integer(double lb, double ub, std::string name = "");

  /// Adds a binary variable (integer in [0,1]).
  std::size_t add_binary(std::string name = "");

  /// Sets the (linear) objective coefficient of a variable.
  void set_objective(std::size_t var, double coeff);

  /// Adds a linear range constraint.
  std::size_t add_linear(std::vector<lp::Coeff> coeffs, double lb, double ub,
                         std::string name = "");

  /// Adds a convex nonlinear constraint f(x) <= 0.
  std::size_t add_nonlinear(NonlinearConstraint c);

  /// Declares an SOS1 set over existing variables.
  std::size_t add_sos1(Sos1 s);

  // Accessors.
  std::size_t num_vars() const { return lb_.size(); }
  double lower(std::size_t v) const;
  double upper(std::size_t v) const;
  bool is_integer(std::size_t v) const;
  double objective_coeff(std::size_t v) const;
  const std::string& var_name(std::size_t v) const;

  std::size_t num_linear() const { return lin_coeffs_.size(); }
  const std::vector<lp::Coeff>& linear_coeffs(std::size_t r) const;
  double linear_lower(std::size_t r) const;
  double linear_upper(std::size_t r) const;
  const std::string& linear_name(std::size_t r) const;

  const std::vector<NonlinearConstraint>& nonlinear() const { return nonlin_; }
  const std::vector<Sos1>& sos1() const { return sos_; }

  /// Objective value c^T x.
  double objective_value(std::span<const double> x) const;

  /// Max violation of nonlinear constraints at x (0 if none).
  double max_nonlinear_violation(std::span<const double> x) const;

  /// True when x satisfies bounds, linear rows, nonlinear constraints,
  /// integrality, and SOS1 conditions within the given tolerances.
  bool is_feasible(std::span<const double> x, double feas_tol = 1e-6,
                   double int_tol = 1e-6) const;

 private:
  std::size_t add_var(double lb, double ub, bool integer, std::string name);

  std::vector<double> lb_, ub_, obj_;
  std::vector<bool> integer_;
  std::vector<std::string> names_;
  std::vector<std::vector<lp::Coeff>> lin_coeffs_;
  std::vector<double> lin_lb_, lin_ub_;
  std::vector<std::string> lin_names_;
  std::vector<NonlinearConstraint> nonlin_;
  std::vector<Sos1> sos_;
};

}  // namespace hslb::minlp
