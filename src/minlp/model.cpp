#include "minlp/model.hpp"

#include <cmath>

#include "common/contracts.hpp"

namespace hslb::minlp {

std::size_t Model::add_var(double lb, double ub, bool integer, std::string name) {
  HSLB_EXPECTS(lb <= ub);
  lb_.push_back(lb);
  ub_.push_back(ub);
  obj_.push_back(0.0);
  integer_.push_back(integer);
  if (name.empty()) name = (integer ? "i" : "x") + std::to_string(lb_.size() - 1);
  names_.push_back(std::move(name));
  return lb_.size() - 1;
}

std::size_t Model::add_continuous(double lb, double ub, std::string name) {
  return add_var(lb, ub, false, std::move(name));
}

std::size_t Model::add_integer(double lb, double ub, std::string name) {
  HSLB_EXPECTS(std::isfinite(lb) && std::isfinite(ub));
  return add_var(std::ceil(lb - 1e-9), std::floor(ub + 1e-9), true, std::move(name));
}

std::size_t Model::add_binary(std::string name) {
  return add_var(0.0, 1.0, true, std::move(name));
}

void Model::set_objective(std::size_t var, double coeff) {
  HSLB_EXPECTS(var < num_vars());
  obj_[var] = coeff;
}

std::size_t Model::add_linear(std::vector<lp::Coeff> coeffs, double lb,
                              double ub, std::string name) {
  HSLB_EXPECTS(lb <= ub);
  for (const auto& [v, c] : coeffs) {
    HSLB_EXPECTS(v < num_vars());
    (void)c;
  }
  lin_coeffs_.push_back(std::move(coeffs));
  lin_lb_.push_back(lb);
  lin_ub_.push_back(ub);
  if (name.empty()) name = "lin" + std::to_string(lin_coeffs_.size() - 1);
  lin_names_.push_back(std::move(name));
  return lin_coeffs_.size() - 1;
}

std::size_t Model::add_nonlinear(NonlinearConstraint c) {
  HSLB_EXPECTS(static_cast<bool>(c.value));
  HSLB_EXPECTS(static_cast<bool>(c.gradient));
  HSLB_EXPECTS(!c.vars.empty());
  for (std::size_t v : c.vars) HSLB_EXPECTS(v < num_vars());
  nonlin_.push_back(std::move(c));
  return nonlin_.size() - 1;
}

std::size_t Model::add_sos1(Sos1 s) {
  HSLB_EXPECTS(s.vars.size() == s.weights.size());
  HSLB_EXPECTS(s.vars.size() >= 2);
  for (std::size_t v : s.vars) HSLB_EXPECTS(v < num_vars());
  for (std::size_t i = 1; i < s.weights.size(); ++i)
    HSLB_EXPECTS(s.weights[i] > s.weights[i - 1]);
  sos_.push_back(std::move(s));
  return sos_.size() - 1;
}

double Model::lower(std::size_t v) const {
  HSLB_EXPECTS(v < num_vars());
  return lb_[v];
}

double Model::upper(std::size_t v) const {
  HSLB_EXPECTS(v < num_vars());
  return ub_[v];
}

bool Model::is_integer(std::size_t v) const {
  HSLB_EXPECTS(v < num_vars());
  return integer_[v];
}

double Model::objective_coeff(std::size_t v) const {
  HSLB_EXPECTS(v < num_vars());
  return obj_[v];
}

const std::string& Model::var_name(std::size_t v) const {
  HSLB_EXPECTS(v < num_vars());
  return names_[v];
}

const std::vector<lp::Coeff>& Model::linear_coeffs(std::size_t r) const {
  HSLB_EXPECTS(r < num_linear());
  return lin_coeffs_[r];
}

double Model::linear_lower(std::size_t r) const {
  HSLB_EXPECTS(r < num_linear());
  return lin_lb_[r];
}

double Model::linear_upper(std::size_t r) const {
  HSLB_EXPECTS(r < num_linear());
  return lin_ub_[r];
}

const std::string& Model::linear_name(std::size_t r) const {
  HSLB_EXPECTS(r < num_linear());
  return lin_names_[r];
}

double Model::objective_value(std::span<const double> x) const {
  HSLB_EXPECTS(x.size() == num_vars());
  double acc = 0.0;
  for (std::size_t v = 0; v < num_vars(); ++v) acc += obj_[v] * x[v];
  return acc;
}

double Model::max_nonlinear_violation(std::span<const double> x) const {
  double worst = 0.0;
  for (const auto& c : nonlin_) worst = std::max(worst, c.value(x));
  return worst;
}

bool Model::is_feasible(std::span<const double> x, double feas_tol,
                        double int_tol) const {
  HSLB_EXPECTS(x.size() == num_vars());
  for (std::size_t v = 0; v < num_vars(); ++v) {
    if (x[v] < lb_[v] - feas_tol || x[v] > ub_[v] + feas_tol) return false;
    if (integer_[v] && std::fabs(x[v] - std::round(x[v])) > int_tol) return false;
  }
  for (std::size_t r = 0; r < num_linear(); ++r) {
    double a = 0.0, mag = 0.0;
    for (const auto& [v, c] : lin_coeffs_[r]) {
      a += c * x[v];
      mag += std::fabs(c * x[v]);
    }
    // Tolerance scales with both the bounds and the summand magnitudes so
    // that rows mixing O(1e4) coefficients with cancellation are judged
    // relative to their own arithmetic, not absolutely.
    const double scale =
        1.0 + mag +
        std::max(std::isfinite(lin_lb_[r]) ? std::fabs(lin_lb_[r]) : 0.0,
                 std::isfinite(lin_ub_[r]) ? std::fabs(lin_ub_[r]) : 0.0);
    if (a < lin_lb_[r] - feas_tol * scale || a > lin_ub_[r] + feas_tol * scale)
      return false;
  }
  for (const auto& c : nonlin_) {
    if (c.value(x) > feas_tol * (1.0 + std::fabs(objective_value(x)))) return false;
  }
  for (const auto& s : sos_) {
    std::size_t nonzero = 0;
    for (std::size_t v : s.vars)
      if (std::fabs(x[v]) > int_tol) ++nonzero;
    if (nonzero > 1) return false;
  }
  return true;
}

}  // namespace hslb::minlp
