#include "minlp/kelley.hpp"

#include <cmath>

#include "common/contracts.hpp"
#include "common/log.hpp"
#include "lp/simplex.hpp"

namespace hslb::minlp {

namespace {

lp::Model build_variables_and_linear_rows(const Model& model,
                                          const BoundOverrides& bounds) {
  lp::Model out;
  for (std::size_t v = 0; v < model.num_vars(); ++v) {
    const double lb = bounds.lb(model, v);
    const double ub = bounds.ub(model, v);
    // Branching can produce an empty box; encode it as an infeasible pair of
    // rows rather than violating the lp::Model lb<=ub contract.
    if (lb > ub) {
      const std::size_t col = out.add_variable(ub, lb, model.objective_coeff(v),
                                               model.var_name(v));
      out.add_constraint({{col, 1.0}}, lb, lp::kInf, "empty_lo");
      out.add_constraint({{col, 1.0}}, -lp::kInf, ub, "empty_hi");
      continue;
    }
    out.add_variable(lb, ub, model.objective_coeff(v), model.var_name(v));
  }
  for (std::size_t r = 0; r < model.num_linear(); ++r) {
    out.add_constraint(model.linear_coeffs(r), model.linear_lower(r),
                       model.linear_upper(r));
  }
  return out;
}

}  // namespace

lp::Model build_lp_relaxation(const Model& model, const CutLedger& ledger,
                              const BoundOverrides& bounds) {
  lp::Model out = build_variables_and_linear_rows(model, bounds);
  for (std::size_t i = 0; i < ledger.num_cuts(); ++i) {
    const Cut& c = ledger.cut(i);
    out.add_constraint(c.coeffs, -lp::kInf, c.rhs, "oa");
  }
  return out;
}

lp::Model build_lp_relaxation(const Model& model, const CutPool& pool,
                              const BoundOverrides& bounds) {
  lp::Model out = build_variables_and_linear_rows(model, bounds);
  for (const std::size_t id : pool.active_ids()) {
    const Cut& c = pool.cuts()[id];
    out.add_constraint(c.coeffs, -lp::kInf, c.rhs, "oa");
  }
  return out;
}

KelleyResult solve_relaxation(const Model& model, CutLedger& ledger,
                              const BoundOverrides& bounds,
                              const KelleyOptions& options) {
  KelleyResult result;
  result.status = KelleyResult::Status::RoundLimit;

  // Build the relaxation once; later rounds only append their new cut rows
  // and warm-start from the previous round's basis, so each round costs a
  // handful of dual/primal pivots instead of a full two-phase solve.
  lp::Model relax = build_lp_relaxation(model, ledger, bounds);
  std::size_t cuts_in_relax = ledger.num_cuts();
  lp::Basis basis;

  for (std::size_t round = 0; round < options.max_rounds; ++round) {
    lp::Options lp_opt = options.lp;
    if (!basis.empty()) lp_opt.warm_start = &basis;
    const lp::Solution sol = lp::solve(relax, lp_opt);
    ++result.lp_solves;
    result.lp_pivots += sol.iterations;
    result.lp_stats.merge(sol.stats);

    if (sol.status == lp::Status::Infeasible) {
      result.status = KelleyResult::Status::Infeasible;
      return result;
    }
    // The model builders give every variable finite bounds (asserted by the
    // B&B driver), so the relaxation cannot be unbounded.
    HSLB_ASSERT(sol.status == lp::Status::Optimal);
    basis = sol.basis;

    const double scale = 1.0 + std::fabs(sol.objective);
    const double worst = model.max_nonlinear_violation(sol.x);
    if (worst <= options.feas_tol * scale) {
      result.status = KelleyResult::Status::Optimal;
      result.objective = sol.objective;
      result.x = sol.x;
      result.basis = std::move(basis);
      return result;
    }

    const std::size_t added =
        ledger.add_violated(model, sol.x, options.feas_tol * scale);
    result.cuts_added += added;
    if (added == 0) {
      // Numerically stalled: violation persists but the linearization no
      // longer separates. Accept the point as the relaxation solution; the
      // residual violation is below what the cut arithmetic can resolve.
      log::debug() << "kelley: stalled with violation " << worst;
      result.status = KelleyResult::Status::Optimal;
      result.objective = sol.objective;
      result.x = sol.x;
      result.basis = std::move(basis);
      return result;
    }
    for (std::size_t c = cuts_in_relax; c < ledger.num_cuts(); ++c) {
      relax.add_constraint(ledger.cut(c).coeffs, -lp::kInf, ledger.cut(c).rhs,
                           "oa");
    }
    cuts_in_relax = ledger.num_cuts();
  }
  return result;
}

KelleyResult solve_relaxation(const Model& model, CutPool& pool,
                              const BoundOverrides& bounds,
                              const KelleyOptions& options) {
  const std::vector<std::size_t> active = pool.active_ids();
  CutLedger ledger(pool, active);
  KelleyResult result = solve_relaxation(model, ledger, bounds, options);
  // Serial caller: fold the ledger straight back into the pool.
  for (const std::size_t id : ledger.reactivated()) pool.reactivate(id);
  for (Cut& c : ledger.take_appended()) pool.insert(std::move(c));
  return result;
}

KelleyResult solve_relaxation(const Model& model, CutPool& pool,
                              const KelleyOptions& options) {
  return solve_relaxation(model, pool, BoundOverrides(model.num_vars()), options);
}

}  // namespace hslb::minlp
