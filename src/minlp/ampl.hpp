// AMPL export of MINLP models.
//
// The paper authored its allocation models in AMPL and solved them through
// MINOTAUR ("Our MINLP optimization problem is written in AMPL ... it can
// be used with several different solvers"). This exporter emits our C++
// models as a standalone .mod file so they can be eyeballed against the
// paper's Table I, archived with experiment outputs, or fed to an external
// AMPL-compatible solver.
//
// Nonlinear constraints are emitted from their `formula` field (the model
// builders populate it); constraints without a formula are emitted as a
// comment, since callbacks cannot be introspected.
#pragma once

#include <string>

#include "minlp/model.hpp"

namespace hslb::minlp {

struct AmplOptions {
  /// Objective name in the emitted model.
  std::string objective_name = "wall_clock";
  /// Comment header prepended to the file.
  std::string header;
};

/// Renders the model as AMPL text.
std::string to_ampl(const Model& model, const AmplOptions& options = {});

}  // namespace hslb::minlp
