// Outer-approximation cut machinery (§III-E of the paper).
//
// Given a convex constraint f(x) <= 0 and a linearization point x_k, the cut
//
//     grad f(x_k)^T (x - x_k) + f(x_k) <= 0
//
// is globally valid (convexity) and cuts off any point with f > 0 at x_k.
// Cuts live in a pool shared by the whole branch-and-bound tree, because
// convexity makes them valid at every node.
//
// The pool manages a *lifecycle* per cut: a cut that stays slack at node
// relaxation optima ages, and past an age limit it is retired from the
// active set (its row stops being generated into node LPs). Retired cuts
// remain in the pool and are reactivated the moment a node finds them
// violated again — validity is never lost, only LP size is reclaimed.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "lp/model.hpp"
#include "minlp/model.hpp"

namespace hslb::minlp {

/// One linear cut: sum coeffs <= rhs.
struct Cut {
  std::vector<lp::Coeff> coeffs;
  double rhs;
  std::size_t source_constraint;  ///< index into Model::nonlinear()

  /// Violation of the cut at x (positive means violated).
  double violation(std::span<const double> x) const;
};

/// Builds the OA cut for nonlinear constraint `k` of `model` at point `x`.
Cut make_oa_cut(const Model& model, std::size_t k, std::span<const double> x);

/// Shared pool of globally valid cuts with duplicate suppression and
/// age-based deactivation. Cut ids are stable indices into cuts().
class CutPool {
 public:
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  /// Adds the cut (active, age 0) unless an (almost) identical one is
  /// already present; returns the id of the stored cut either way.
  std::size_t insert(Cut cut);

  /// Legacy interface: insert, report whether the cut was new. A duplicate
  /// of a retired cut reactivates it (the caller saw it violated).
  bool add(Cut cut);

  /// Id of a stored near-duplicate of `cut` (same source constraint, same
  /// sparsity pattern, coefficients and rhs within relative 1e-9), or npos.
  std::size_t find_duplicate(const Cut& cut) const;

  const std::vector<Cut>& cuts() const { return cuts_; }
  std::size_t size() const { return cuts_.size(); }

  /// Adds OA cuts at x for every nonlinear constraint violated beyond tol.
  /// Returns the number of cuts actually added (or reactivated).
  std::size_t add_violated(const Model& model, std::span<const double> x,
                           double tol);

  // --- Lifecycle ---------------------------------------------------------
  bool is_active(std::size_t id) const { return active_[id] != 0; }
  std::size_t num_active() const { return num_active_; }
  /// Active cut ids in ascending order (the canonical node-LP row layout).
  std::vector<std::size_t> active_ids() const;

  /// Records one node observation of an active cut: tight resets its age,
  /// slack ages it, and an age beyond `age_limit` retires it (age_limit of
  /// 0 disables retirement). Observations of retired cuts are dropped.
  /// Returns true when this observation retired the cut.
  bool observe(std::size_t id, bool tight, std::size_t age_limit);

  /// Puts a retired cut back in the active set with a fresh age. No-op on
  /// active cuts. Returns true when the state actually flipped.
  bool reactivate(std::size_t id);

  std::size_t retired_total() const { return retired_total_; }
  std::size_t reactivated_total() const { return reactivated_total_; }

 private:
  std::vector<Cut> cuts_;
  std::vector<std::uint32_t> age_;
  std::vector<char> active_;
  std::size_t num_active_ = 0;
  std::size_t retired_total_ = 0;
  std::size_t reactivated_total_ = 0;
  /// Hash of (source, sparsity pattern) -> cut ids with that signature.
  /// Exact-match candidates only; the tolerance compare runs per bucket.
  std::unordered_map<std::uint64_t, std::vector<std::size_t>> by_signature_;
};

/// Worker-side overlay of a shared CutPool for one node expansion. The
/// ledger never mutates the shared pool (node workers run concurrently
/// within a wave); it records what the node wants — appended cuts and
/// reactivations — for the serial wave-order merge to apply.
///
/// The ledger's *layout* is the node LP's cut-row order: the wave-start
/// active ids (ascending) first, then every cut gained during the node
/// (fresh or reactivated) in discovery order.
class CutLedger {
 public:
  /// One layout slot: a shared pool id, or an index into appended().
  struct Ref {
    std::size_t index;
    bool is_appended;
  };

  CutLedger(const CutPool& shared, std::span<const std::size_t> wave_active);

  std::size_t num_cuts() const { return layout_.size(); }
  const Cut& cut(std::size_t layout_pos) const;
  const std::vector<Ref>& layout() const { return layout_; }

  /// Adds a cut to the layout unless already present: a fresh cut is
  /// appended; a duplicate of a retired shared cut is reactivated instead
  /// (both count as a row gained). Returns true if the layout grew.
  bool add(Cut cut);

  /// OA cuts at x for every violated nonlinear constraint; returns rows
  /// gained (appended + reactivated), the progress measure the node's
  /// stall check relies on.
  std::size_t add_violated(const Model& model, std::span<const double> x,
                           double tol);

  /// Scans the shared pool's *retired* cuts for violation at x and pulls
  /// every violated one back into the layout. Returns how many.
  std::size_t reactivate_violated(std::span<const double> x, double tol);

  const std::vector<Cut>& appended() const { return appended_; }
  std::vector<Cut> take_appended() { return std::move(appended_); }
  /// Shared ids this node wants reactivated, in discovery order.
  const std::vector<std::size_t>& reactivated() const { return reactivated_; }

 private:
  const CutPool& shared_;
  std::vector<Ref> layout_;
  std::vector<Cut> appended_;
  std::vector<std::size_t> reactivated_;
  std::vector<char> in_layout_;  ///< per shared id: already a layout slot?
};

}  // namespace hslb::minlp
