// Outer-approximation cut machinery (§III-E of the paper).
//
// Given a convex constraint f(x) <= 0 and a linearization point x_k, the cut
//
//     grad f(x_k)^T (x - x_k) + f(x_k) <= 0
//
// is globally valid (convexity) and cuts off any point with f > 0 at x_k.
// Cuts live in a pool shared by the whole branch-and-bound tree, because
// convexity makes them valid at every node.
#pragma once

#include <span>
#include <vector>

#include "lp/model.hpp"
#include "minlp/model.hpp"

namespace hslb::minlp {

/// One linear cut: sum coeffs <= rhs.
struct Cut {
  std::vector<lp::Coeff> coeffs;
  double rhs;
  std::size_t source_constraint;  ///< index into Model::nonlinear()

  /// Violation of the cut at x (positive means violated).
  double violation(std::span<const double> x) const;
};

/// Builds the OA cut for nonlinear constraint `k` of `model` at point `x`.
Cut make_oa_cut(const Model& model, std::size_t k, std::span<const double> x);

/// Shared pool of globally valid cuts with simple duplicate suppression.
class CutPool {
 public:
  /// Adds a cut unless an (almost) identical one is already present.
  /// Returns true if the cut was added.
  bool add(Cut cut);

  const std::vector<Cut>& cuts() const { return cuts_; }
  std::size_t size() const { return cuts_.size(); }

  /// Adds OA cuts at x for every nonlinear constraint violated beyond tol.
  /// Returns the number of cuts actually added.
  std::size_t add_violated(const Model& model, std::span<const double> x,
                           double tol);

 private:
  std::vector<Cut> cuts_;
};

}  // namespace hslb::minlp
