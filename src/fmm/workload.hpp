// FMM-style tree workload: data-driven octree traversal tasks with
// parent/child-weighted costs.
//
// Models the load-balancing shape of adaptive fast-multipole / multiresolution
// tree codes (arXiv:1203.0889; madness's LBDeuxPmap): the spatial octree is
// cut at a shallow level into per-subtree tasks, each task's work is the
// madness `lbcost`-style weighted sum of its leaf and interior nodes, and
// the top of the tree (root + first levels) is global coupling work every
// task synchronizes on — which is exactly a wave barrier. A traversal
// timestep = one wave; a run = `waves` timesteps.
//
// The "uniform" variant refines every subtree to the same depth (mild load
// spread from the cost weights alone); "adaptive" draws per-subtree
// refinement depths from a seeded heavy-tailed distribution — the deep
// subtrees dominate, which is the regime where static per-task allocation
// beats uniform block decomposition.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hslb/waveapp.hpp"

namespace hslb::fmm {

struct TreeOptions {
  /// Number of allocatable subtree tasks the level-2 cells are folded into.
  long long tasks = 16;
  /// Refinement depth below the cut level (uniform variant; the adaptive
  /// variant draws per-cell depths in [2, depth + 2]).
  long long depth = 5;
  /// "uniform" or "adaptive".
  std::string variant = "adaptive";
  std::uint64_t seed = 3;
  /// lbcost weights: per-leaf and per-interior-node work (madness's
  /// LBDeuxPmap cost functional).
  double leaf_value = 1.0;
  double parent_value = 0.1;
  /// Traversal timesteps (waves).
  long long waves = 8;
};

/// Builds the tree workload: octree cells -> per-task lbcost work ->
/// ground-truth scaling models. Deterministic in the options.
WaveWorkload tree_workload(const TreeOptions& options = {});

}  // namespace hslb::fmm
