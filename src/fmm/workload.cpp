#include "fmm/workload.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/contracts.hpp"
#include "common/rng.hpp"
#include "common/strings.hpp"

namespace hslb::fmm {

namespace {

/// Seconds of work per lbcost unit (sets the simulated time scale).
constexpr double kSecondsPerUnit = 1e-3;
/// The octree cut level: tasks partition the 8^2 = 64 level-2 cells.
constexpr long long kCutCells = 64;

/// Full-octree node counts below one cell refined `depth` levels.
double leaves_of(long long depth) { return std::pow(8.0, depth); }
double internals_of(long long depth) {
  // 1 + 8 + ... + 8^(depth-1) = (8^depth - 1) / 7 (the cell itself and
  // every interior level above the leaves).
  return (std::pow(8.0, depth) - 1.0) / 7.0;
}

}  // namespace

WaveWorkload tree_workload(const TreeOptions& options) {
  HSLB_EXPECTS(options.tasks >= 1 && options.tasks <= kCutCells);
  HSLB_EXPECTS(options.depth >= 1);
  HSLB_EXPECTS(options.waves >= 1);
  HSLB_EXPECTS(options.leaf_value > 0.0);
  HSLB_EXPECTS(options.parent_value >= 0.0);
  const bool adaptive = options.variant == "adaptive";
  if (!adaptive && options.variant != "uniform") {
    throw std::invalid_argument("unknown fmm variant '" + options.variant +
                                "' (known: uniform, adaptive)");
  }

  // Per-cell refinement depth. Uniform: every subtree equally deep.
  // Adaptive: seeded heavy-tailed draws in [2, depth + 2] — because a
  // subtree's node count grows 8x per level, a few deep cells dominate the
  // load, which is the data-driven-refinement regime of arXiv:1203.0889.
  std::vector<double> cell_work(kCutCells, 0.0);
  for (long long c = 0; c < kCutCells; ++c) {
    long long depth = options.depth;
    if (adaptive) {
      Rng rng(derive_seed(options.seed, static_cast<std::uint64_t>(c)));
      const double u = rng.uniform();
      // P(extra = k) ~ 2^-k: mostly shallow cells, a heavy deep tail.
      long long extra = 0;
      double p = 0.5;
      while (u < p && extra < options.depth) {
        ++extra;
        p *= 0.5;
      }
      depth = 2 + extra;
    }
    cell_work[c] = leaves_of(depth) * options.leaf_value +
                   internals_of(depth) * options.parent_value;
  }

  // Fold cells into contiguous per-task subtrees (Morton-order ranges,
  // the way tree codes actually cut ownership).
  WaveWorkload wl;
  wl.name = "fmm-" + (options.variant.empty() ? "uniform" : options.variant);
  wl.waves = options.waves;
  // The top of the tree (root, level 1, the cut cells themselves) is the
  // global coupling every task joins each timestep — madness's lbcost
  // weights nodes above the cut 100x; that work is the wave barrier here.
  wl.sync_overhead = (1.0 + 8.0 + static_cast<double>(kCutCells)) * 100.0 *
                     options.parent_value * kSecondsPerUnit;
  wl.tasks.reserve(static_cast<std::size_t>(options.tasks));
  for (long long t = 0; t < options.tasks; ++t) {
    const long long begin = t * kCutCells / options.tasks;
    const long long end = (t + 1) * kCutCells / options.tasks;
    double work = 0.0;
    for (long long c = begin; c < end; ++c) work += cell_work[c];

    WaveTask task;
    task.name = strings::format("subtree%02lld", t);
    const double s = work * kSecondsPerUnit;
    // Near-tree-traversal scaling: the leaf work parallelizes, the
    // upward/downward passes over the subtree surface do not scale past
    // the surface size (w^(2/3) communication with a mildly superlinear
    // exponent), and a small serial top-of-subtree floor remains.
    task.truth.a = 0.93 * s;
    task.truth.b = 1e-4 * std::pow(work, 2.0 / 3.0) * kSecondsPerUnit;
    task.truth.c = 1.15;
    task.truth.d = 0.02 * s;
    // Working set ~ the subtree's nodes (multipole + local expansions).
    task.memory_gb = work * 1e-4;
    wl.tasks.push_back(std::move(task));
  }
  return wl;
}

}  // namespace hslb::fmm
