// Dense row-major matrix and vector operations.
//
// Sized for this library's needs: least-squares Jacobians (rows = benchmark
// points, cols = 4 parameters) and simplex basis matrices (tens of rows).
// Clarity and bounds-checked contracts over blocking/tiling.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "common/contracts.hpp"

namespace hslb::linalg {

using Vector = std::vector<double>;

/// Dense row-major matrix of doubles.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Builds from nested initializer data; all rows must have equal length.
  static Matrix from_rows(const std::vector<std::vector<double>>& rows);

  /// Identity matrix of order n.
  static Matrix identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c) {
    HSLB_EXPECTS(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    HSLB_EXPECTS(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  std::span<double> row(std::size_t r) {
    HSLB_EXPECTS(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }
  std::span<const double> row(std::size_t r) const {
    HSLB_EXPECTS(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }

  /// Matrix transpose.
  Matrix transposed() const;

  /// Matrix-vector product; x.size() must equal cols().
  Vector mul(std::span<const double> x) const;

  /// Transpose-matrix-vector product A^T y; y.size() must equal rows().
  Vector mul_transpose(std::span<const double> y) const;

  /// Matrix-matrix product; this->cols() must equal other.rows().
  Matrix mul(const Matrix& other) const;

  /// A^T A (Gram matrix), used to form normal equations.
  Matrix gram() const;

  /// Frobenius norm.
  double frobenius_norm() const;

  /// Human-readable rendering (for debugging/logging).
  std::string str(int precision = 4) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Dot product; sizes must match.
double dot(std::span<const double> a, std::span<const double> b);

/// Euclidean norm.
double norm2(std::span<const double> a);

/// Infinity norm (max absolute value); 0 for empty input.
double norm_inf(std::span<const double> a);

/// out = a + s * b; sizes must match.
Vector axpy(std::span<const double> a, double s, std::span<const double> b);

/// Element-wise scaling.
Vector scale(std::span<const double> a, double s);

}  // namespace hslb::linalg
