#include "linalg/decomp.hpp"

#include <cmath>

namespace hslb::linalg {

std::optional<Cholesky> Cholesky::factor(const Matrix& a) {
  HSLB_EXPECTS(a.rows() == a.cols());
  const std::size_t n = a.rows();
  Matrix l(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    double diag = a(j, j);
    for (std::size_t k = 0; k < j; ++k) diag -= l(j, k) * l(j, k);
    if (diag <= 0.0 || !std::isfinite(diag)) return std::nullopt;
    l(j, j) = std::sqrt(diag);
    for (std::size_t i = j + 1; i < n; ++i) {
      double v = a(i, j);
      for (std::size_t k = 0; k < j; ++k) v -= l(i, k) * l(j, k);
      l(i, j) = v / l(j, j);
    }
  }
  return Cholesky(std::move(l));
}

Vector Cholesky::solve(std::span<const double> b) const {
  const std::size_t n = l_.rows();
  HSLB_EXPECTS(b.size() == n);
  // Forward: L y = b
  Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double v = b[i];
    for (std::size_t k = 0; k < i; ++k) v -= l_(i, k) * y[k];
    y[i] = v / l_(i, i);
  }
  // Backward: L^T x = y
  Vector x(n);
  for (std::size_t ii = n; ii > 0; --ii) {
    const std::size_t i = ii - 1;
    double v = y[i];
    for (std::size_t k = i + 1; k < n; ++k) v -= l_(k, i) * x[k];
    x[i] = v / l_(i, i);
  }
  return x;
}

QR::QR(const Matrix& a) : qr_(a), rows_(a.rows()), cols_(a.cols()) {
  HSLB_EXPECTS(rows_ >= cols_);
  tau_.assign(cols_, 0.0);
  for (std::size_t k = 0; k < cols_; ++k) {
    // Householder vector for column k over rows k..rows-1.
    double norm = 0.0;
    for (std::size_t i = k; i < rows_; ++i) norm += qr_(i, k) * qr_(i, k);
    norm = std::sqrt(norm);
    if (norm == 0.0) {
      tau_[k] = 0.0;
      continue;
    }
    const double alpha = qr_(k, k) >= 0 ? -norm : norm;
    const double v0 = qr_(k, k) - alpha;
    // Normalize so that the implicit v has v[k] = 1.
    for (std::size_t i = k + 1; i < rows_; ++i) qr_(i, k) /= v0;
    tau_[k] = -v0 / alpha;  // = 2 / (v^T v) with v[k]=1 normalization
    qr_(k, k) = alpha;      // R diagonal
    // Apply H = I - tau v v^T to remaining columns.
    for (std::size_t j = k + 1; j < cols_; ++j) {
      double s = qr_(k, j);
      for (std::size_t i = k + 1; i < rows_; ++i) s += qr_(i, k) * qr_(i, j);
      s *= tau_[k];
      qr_(k, j) -= s;
      for (std::size_t i = k + 1; i < rows_; ++i) qr_(i, j) -= s * qr_(i, k);
    }
  }
}

double QR::min_abs_diag_r() const {
  double m = std::fabs(qr_(0, 0));
  for (std::size_t k = 1; k < cols_; ++k) m = std::min(m, std::fabs(qr_(k, k)));
  return m;
}

Vector QR::solve(std::span<const double> b) const {
  HSLB_EXPECTS(b.size() == rows_);
  HSLB_EXPECTS(min_abs_diag_r() > 1e-13 * (1.0 + std::fabs(qr_(0, 0))));
  Vector y(b.begin(), b.end());
  // Apply Q^T: product of Householder reflections in order.
  for (std::size_t k = 0; k < cols_; ++k) {
    if (tau_[k] == 0.0) continue;
    double s = y[k];
    for (std::size_t i = k + 1; i < rows_; ++i) s += qr_(i, k) * y[i];
    s *= tau_[k];
    y[k] -= s;
    for (std::size_t i = k + 1; i < rows_; ++i) y[i] -= s * qr_(i, k);
  }
  // Back-substitute R x = y[0..cols).
  Vector x(cols_);
  for (std::size_t kk = cols_; kk > 0; --kk) {
    const std::size_t k = kk - 1;
    double v = y[k];
    for (std::size_t j = k + 1; j < cols_; ++j) v -= qr_(k, j) * x[j];
    x[k] = v / qr_(k, k);
  }
  return x;
}

std::optional<LU> LU::factor(const Matrix& a, double pivot_tol) {
  HSLB_EXPECTS(a.rows() == a.cols());
  const std::size_t n = a.rows();
  Matrix lu = a;
  std::vector<std::size_t> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = i;

  // Singularity is judged relative to the matrix scale: an absolute
  // threshold misfires badly when entries span many orders of magnitude
  // (simplex bases mix +-1 slack columns with O(1e4) cut coefficients).
  double scale = 0.0;
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c) scale = std::max(scale, std::fabs(lu(r, c)));
  pivot_tol = std::max(pivot_tol, 1e-11 * scale);

  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivot.
    std::size_t piv = k;
    double best = std::fabs(lu(k, k));
    for (std::size_t i = k + 1; i < n; ++i) {
      const double v = std::fabs(lu(i, k));
      if (v > best) {
        best = v;
        piv = i;
      }
    }
    if (best <= pivot_tol) return std::nullopt;
    if (piv != k) {
      for (std::size_t j = 0; j < n; ++j) std::swap(lu(k, j), lu(piv, j));
      std::swap(perm[k], perm[piv]);
    }
    for (std::size_t i = k + 1; i < n; ++i) {
      lu(i, k) /= lu(k, k);
      const double m = lu(i, k);
      if (m == 0.0) continue;
      for (std::size_t j = k + 1; j < n; ++j) lu(i, j) -= m * lu(k, j);
    }
  }
  return LU(std::move(lu), std::move(perm));
}

Vector LU::solve(std::span<const double> b) const {
  const std::size_t n = lu_.rows();
  HSLB_EXPECTS(b.size() == n);
  Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double v = b[perm_[i]];
    for (std::size_t k = 0; k < i; ++k) v -= lu_(i, k) * y[k];
    y[i] = v;
  }
  Vector x(n);
  for (std::size_t ii = n; ii > 0; --ii) {
    const std::size_t i = ii - 1;
    double v = y[i];
    for (std::size_t k = i + 1; k < n; ++k) v -= lu_(i, k) * x[k];
    x[i] = v / lu_(i, i);
  }
  return x;
}

Vector LU::solve_transpose(std::span<const double> b) const {
  // A^T x = b  with  P A = L U  =>  A^T = (P^T L U)^T = U^T L^T P.
  // Solve U^T z = b, then L^T w = z, then x = P^T w.
  const std::size_t n = lu_.rows();
  HSLB_EXPECTS(b.size() == n);
  Vector z(n);
  for (std::size_t i = 0; i < n; ++i) {
    double v = b[i];
    for (std::size_t k = 0; k < i; ++k) v -= lu_(k, i) * z[k];
    z[i] = v / lu_(i, i);
  }
  Vector w(n);
  for (std::size_t ii = n; ii > 0; --ii) {
    const std::size_t i = ii - 1;
    double v = z[i];
    for (std::size_t k = i + 1; k < n; ++k) v -= lu_(k, i) * w[k];
    w[i] = v;
  }
  Vector x(n);
  for (std::size_t i = 0; i < n; ++i) x[perm_[i]] = w[i];
  return x;
}

Vector lstsq(const Matrix& a, std::span<const double> b) {
  return QR(a).solve(b);
}

}  // namespace hslb::linalg
