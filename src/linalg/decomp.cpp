#include "linalg/decomp.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <utility>

namespace hslb::linalg {

std::optional<Cholesky> Cholesky::factor(const Matrix& a) {
  HSLB_EXPECTS(a.rows() == a.cols());
  const std::size_t n = a.rows();
  Matrix l(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    double diag = a(j, j);
    for (std::size_t k = 0; k < j; ++k) diag -= l(j, k) * l(j, k);
    if (diag <= 0.0 || !std::isfinite(diag)) return std::nullopt;
    l(j, j) = std::sqrt(diag);
    for (std::size_t i = j + 1; i < n; ++i) {
      double v = a(i, j);
      for (std::size_t k = 0; k < j; ++k) v -= l(i, k) * l(j, k);
      l(i, j) = v / l(j, j);
    }
  }
  return Cholesky(std::move(l));
}

Vector Cholesky::solve(std::span<const double> b) const {
  const std::size_t n = l_.rows();
  HSLB_EXPECTS(b.size() == n);
  // Forward: L y = b
  Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double v = b[i];
    for (std::size_t k = 0; k < i; ++k) v -= l_(i, k) * y[k];
    y[i] = v / l_(i, i);
  }
  // Backward: L^T x = y
  Vector x(n);
  for (std::size_t ii = n; ii > 0; --ii) {
    const std::size_t i = ii - 1;
    double v = y[i];
    for (std::size_t k = i + 1; k < n; ++k) v -= l_(k, i) * x[k];
    x[i] = v / l_(i, i);
  }
  return x;
}

QR::QR(const Matrix& a) : qr_(a), rows_(a.rows()), cols_(a.cols()) {
  HSLB_EXPECTS(rows_ >= cols_);
  tau_.assign(cols_, 0.0);
  for (std::size_t k = 0; k < cols_; ++k) {
    // Householder vector for column k over rows k..rows-1.
    double norm = 0.0;
    for (std::size_t i = k; i < rows_; ++i) norm += qr_(i, k) * qr_(i, k);
    norm = std::sqrt(norm);
    if (norm == 0.0) {
      tau_[k] = 0.0;
      continue;
    }
    const double alpha = qr_(k, k) >= 0 ? -norm : norm;
    const double v0 = qr_(k, k) - alpha;
    // Normalize so that the implicit v has v[k] = 1.
    for (std::size_t i = k + 1; i < rows_; ++i) qr_(i, k) /= v0;
    tau_[k] = -v0 / alpha;  // = 2 / (v^T v) with v[k]=1 normalization
    qr_(k, k) = alpha;      // R diagonal
    // Apply H = I - tau v v^T to remaining columns.
    for (std::size_t j = k + 1; j < cols_; ++j) {
      double s = qr_(k, j);
      for (std::size_t i = k + 1; i < rows_; ++i) s += qr_(i, k) * qr_(i, j);
      s *= tau_[k];
      qr_(k, j) -= s;
      for (std::size_t i = k + 1; i < rows_; ++i) qr_(i, j) -= s * qr_(i, k);
    }
  }
}

double QR::min_abs_diag_r() const {
  double m = std::fabs(qr_(0, 0));
  for (std::size_t k = 1; k < cols_; ++k) m = std::min(m, std::fabs(qr_(k, k)));
  return m;
}

Vector QR::solve(std::span<const double> b) const {
  HSLB_EXPECTS(b.size() == rows_);
  HSLB_EXPECTS(min_abs_diag_r() > 1e-13 * (1.0 + std::fabs(qr_(0, 0))));
  Vector y(b.begin(), b.end());
  // Apply Q^T: product of Householder reflections in order.
  for (std::size_t k = 0; k < cols_; ++k) {
    if (tau_[k] == 0.0) continue;
    double s = y[k];
    for (std::size_t i = k + 1; i < rows_; ++i) s += qr_(i, k) * y[i];
    s *= tau_[k];
    y[k] -= s;
    for (std::size_t i = k + 1; i < rows_; ++i) y[i] -= s * qr_(i, k);
  }
  // Back-substitute R x = y[0..cols).
  Vector x(cols_);
  for (std::size_t kk = cols_; kk > 0; --kk) {
    const std::size_t k = kk - 1;
    double v = y[k];
    for (std::size_t j = k + 1; j < cols_; ++j) v -= qr_(k, j) * x[j];
    x[k] = v / qr_(k, k);
  }
  return x;
}

std::optional<LU> LU::factor(const Matrix& a, double pivot_tol) {
  HSLB_EXPECTS(a.rows() == a.cols());
  const std::size_t n = a.rows();
  Matrix lu = a;
  std::vector<std::size_t> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = i;

  // Singularity is judged relative to the matrix scale: an absolute
  // threshold misfires badly when entries span many orders of magnitude
  // (simplex bases mix +-1 slack columns with O(1e4) cut coefficients).
  double scale = 0.0;
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c) scale = std::max(scale, std::fabs(lu(r, c)));
  pivot_tol = std::max(pivot_tol, 1e-11 * scale);

  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivot.
    std::size_t piv = k;
    double best = std::fabs(lu(k, k));
    for (std::size_t i = k + 1; i < n; ++i) {
      const double v = std::fabs(lu(i, k));
      if (v > best) {
        best = v;
        piv = i;
      }
    }
    if (best <= pivot_tol) return std::nullopt;
    if (piv != k) {
      for (std::size_t j = 0; j < n; ++j) std::swap(lu(k, j), lu(piv, j));
      std::swap(perm[k], perm[piv]);
    }
    for (std::size_t i = k + 1; i < n; ++i) {
      lu(i, k) /= lu(k, k);
      const double m = lu(i, k);
      if (m == 0.0) continue;
      for (std::size_t j = k + 1; j < n; ++j) lu(i, j) -= m * lu(k, j);
    }
  }
  return LU(std::move(lu), std::move(perm));
}

Vector LU::solve(std::span<const double> b) const {
  const std::size_t n = lu_.rows();
  HSLB_EXPECTS(b.size() == n);
  Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double v = b[perm_[i]];
    for (std::size_t k = 0; k < i; ++k) v -= lu_(i, k) * y[k];
    y[i] = v;
  }
  Vector x(n);
  for (std::size_t ii = n; ii > 0; --ii) {
    const std::size_t i = ii - 1;
    double v = y[i];
    for (std::size_t k = i + 1; k < n; ++k) v -= lu_(i, k) * x[k];
    x[i] = v / lu_(i, i);
  }
  return x;
}

Vector LU::solve_transpose(std::span<const double> b) const {
  // A^T x = b  with  P A = L U  =>  A^T = (P^T L U)^T = U^T L^T P.
  // Solve U^T z = b, then L^T w = z, then x = P^T w.
  const std::size_t n = lu_.rows();
  HSLB_EXPECTS(b.size() == n);
  Vector z(n);
  for (std::size_t i = 0; i < n; ++i) {
    double v = b[i];
    for (std::size_t k = 0; k < i; ++k) v -= lu_(k, i) * z[k];
    z[i] = v / lu_(i, i);
  }
  Vector w(n);
  for (std::size_t ii = n; ii > 0; --ii) {
    const std::size_t i = ii - 1;
    double v = z[i];
    for (std::size_t k = i + 1; k < n; ++k) v -= lu_(k, i) * w[k];
    w[i] = v;
  }
  Vector x(n);
  for (std::size_t i = 0; i < n; ++i) x[perm_[i]] = w[i];
  return x;
}

std::optional<SparseLU> SparseLU::factor(
    std::size_t n, const std::vector<std::vector<SparseEntry>>& cols,
    double threshold) {
  HSLB_EXPECTS(cols.size() == n);
  SparseLU lu;
  lu.n_ = n;
  lu.pivot_row_.resize(n);
  lu.pivot_col_.resize(n);
  lu.pivot_.resize(n);
  lu.lcol_.resize(n);
  lu.urow_.resize(n);
  lu.ucol_.resize(n);
  if (n == 0) return lu;

  // Working copy of the active submatrix, column-wise. rowocc[r] lists the
  // columns that may still hold an entry in row r (lazily cleaned: entries
  // killed by cancellation are skipped at use time).
  std::vector<std::vector<SparseEntry>> work(n);
  std::vector<std::vector<std::size_t>> rowocc(n);
  std::vector<std::size_t> rowcount(n, 0);
  std::vector<bool> row_done(n, false), col_done(n, false);
  double scale = 0.0;
  for (std::size_t j = 0; j < n; ++j) {
    for (const auto& [r, v] : cols[j]) {
      HSLB_EXPECTS(r < n);
      if (v == 0.0) continue;
      work[j].push_back({r, v});
      rowocc[r].push_back(j);
      ++rowcount[r];
      scale = std::max(scale, std::fabs(v));
    }
  }
  const double abs_tol = std::max(1e-12, 1e-11 * scale);

  // Step index the U fill by destination column, so the column-wise view
  // (needed for the zero-skipping backward solve) assembles as we pivot.
  std::vector<std::vector<SparseEntry>> ucol_by_col(n);
  std::vector<SparseEntry> mults;
  Scatter scatter(n);

  // Singleton columns pivot at zero Markowitz cost and produce no fill, so
  // they never need the full pivot scan. Simplex bases are dominated by
  // slack/selector singletons, and every elimination step can shrink more
  // columns to size one, so this stack handles almost every step; entries
  // are validated lazily at pop time (a column may have grown stale).
  std::vector<std::size_t> singletons;
  for (std::size_t j = 0; j < n; ++j)
    if (work[j].size() == 1) singletons.push_back(j);

  for (std::size_t k = 0; k < n; ++k) {
    std::size_t best_r = 0, best_c = 0;
    double best_v = 0.0;
    bool found = false;
    // Fast path: any singleton column whose entry clears the absolute
    // floor is an optimal (cost-0, fill-free) Markowitz pivot.
    while (!singletons.empty() && !found) {
      const std::size_t j = singletons.back();
      singletons.pop_back();
      if (col_done[j] || work[j].size() != 1) continue;  // stale entry
      if (std::fabs(work[j][0].value) < abs_tol) continue;  // leave to scan
      found = true;
      best_c = j;
      best_r = work[j][0].index;
      best_v = work[j][0].value;
    }
    // General Markowitz search: minimize (rowcount-1)(colcount-1) over the
    // entries passing both the relative column threshold and the absolute
    // singularity floor. Deterministic tie-break: larger magnitude, then
    // first seen (columns ascending, entries in storage order); a cost-0
    // pivot cannot be improved on, so the scan stops there.
    if (!found) {
      std::size_t best_cost = 0;
      for (std::size_t j = 0; j < n && (!found || best_cost > 0); ++j) {
        if (col_done[j] || work[j].empty()) continue;
        double colmax = 0.0;
        for (const auto& e : work[j])
          colmax = std::max(colmax, std::fabs(e.value));
        const double accept = std::max(abs_tol, threshold * colmax);
        const std::size_t ccost = work[j].size() - 1;
        for (const auto& [r, v] : work[j]) {
          if (std::fabs(v) < accept) continue;
          const std::size_t cost = (rowcount[r] - 1) * ccost;
          if (!found || cost < best_cost ||
              (cost == best_cost && std::fabs(v) > std::fabs(best_v))) {
            found = true;
            best_cost = cost;
            best_r = r;
            best_c = j;
            best_v = v;
          }
          if (best_cost == 0) break;
        }
      }
    }
    if (!found) return std::nullopt;  // singular to working precision

    lu.pivot_row_[k] = best_r;
    lu.pivot_col_[k] = best_c;
    lu.pivot_[k] = best_v;
    row_done[best_r] = true;
    col_done[best_c] = true;

    // Multipliers from the pivot column's remaining active entries.
    mults.clear();
    for (const auto& [r, v] : work[best_c]) {
      if (r == best_r) continue;
      mults.push_back({r, v / best_v});
      --rowcount[r];
    }
    lu.lcol_[k] = mults;
    --rowcount[best_r];
    work[best_c].clear();

    if (mults.empty()) {
      // Fill-free elimination: dropping the pivot row from a column is a
      // plain erase; no scatter pass and no occupancy updates needed.
      for (const std::size_t j : rowocc[best_r]) {
        if (col_done[j]) continue;
        std::vector<SparseEntry>& wj = work[j];
        for (std::size_t t = 0; t < wj.size(); ++t) {
          if (wj[t].index != best_r) continue;
          lu.urow_[k].push_back({j, wj[t].value});
          ucol_by_col[j].push_back({k, wj[t].value});
          wj.erase(wj.begin() + static_cast<std::ptrdiff_t>(t));
          if (wj.size() == 1) singletons.push_back(j);
          break;
        }
      }
      rowocc[best_r].clear();
      continue;
    }

    // Eliminate the pivot row from every column still holding it.
    for (const std::size_t j : rowocc[best_r]) {
      if (col_done[j]) continue;
      double u = 0.0;
      bool present = false;
      for (const auto& [r, v] : work[j]) {
        if (r == best_r) {
          u = v;
          present = true;
          break;
        }
      }
      if (!present) continue;  // stale occupancy entry (cancelled earlier)
      lu.urow_[k].push_back({j, u});
      ucol_by_col[j].push_back({k, u});

      // column j := column j - (u / pivot) * pivot column, active rows only.
      // Existing rows scatter first, so pattern positions >= old_count are
      // fill-in that needs occupancy/count bookkeeping.
      scatter.clear();
      for (const auto& [r, v] : work[j]) {
        if (r != best_r) scatter.add(r, v);
      }
      const std::size_t old_count = scatter.pattern().size();
      for (const auto& [i, m] : mults) scatter.add(i, -m * u);
      std::vector<SparseEntry>& out = work[j];
      out.clear();
      for (std::size_t t = 0; t < scatter.pattern().size(); ++t) {
        const std::size_t r = scatter.pattern()[t];
        const double v = scatter[r];
        const bool is_fill = t >= old_count;
        if (v == 0.0) {
          if (!is_fill) --rowcount[r];  // cancellation killed an entry
          continue;
        }
        if (is_fill) {
          ++rowcount[r];
          rowocc[r].push_back(j);
        }
        out.push_back({r, v});
      }
      if (out.size() == 1) singletons.push_back(j);
    }
    // Row best_r is resolved; its occupancy list is dead weight now.
    rowocc[best_r].clear();
  }

  for (std::size_t k = 0; k < n; ++k) lu.ucol_[k] = std::move(ucol_by_col[lu.pivot_col_[k]]);
  lu.fill_ = n;
  for (std::size_t k = 0; k < n; ++k) lu.fill_ += lu.lcol_[k].size() + lu.urow_[k].size();
  return lu;
}

Vector SparseLU::solve(Vector b) const {
  HSLB_EXPECTS(b.size() == n_);
  // Forward: apply L^{-1} (skip steps whose pivot-row value is exactly 0 —
  // the hypersparsity fast path for unit/cut right-hand sides).
  for (std::size_t k = 0; k < n_; ++k) {
    const double t = b[pivot_row_[k]];
    if (t == 0.0) continue;
    for (const auto& [i, m] : lcol_[k]) b[i] -= m * t;
  }
  // Backward: U x = y in scatter form, descending steps; x indexed by the
  // original column of each step.
  Vector x(n_, 0.0);
  for (std::size_t kk = n_; kk > 0; --kk) {
    const std::size_t k = kk - 1;
    const double xv = b[pivot_row_[k]] / pivot_[k];
    x[pivot_col_[k]] = xv;
    if (xv == 0.0) continue;
    for (const auto& [l, u] : ucol_[k]) b[pivot_row_[l]] -= u * xv;
  }
  return x;
}

Vector SparseLU::solve_transpose(Vector b) const {
  HSLB_EXPECTS(b.size() == n_);
  // U^T z = b in scatter form, ascending steps (z overwrites b at the
  // step's pivot column slot).
  Vector z(n_, 0.0);
  for (std::size_t k = 0; k < n_; ++k) {
    const double zk = b[pivot_col_[k]] / pivot_[k];
    z[k] = zk;
    if (zk == 0.0) continue;
    for (const auto& [j, u] : urow_[k]) b[j] -= u * zk;
  }
  // L^T w = z, descending steps, gather form; w indexed by original rows.
  Vector w(n_, 0.0);
  for (std::size_t kk = n_; kk > 0; --kk) {
    const std::size_t k = kk - 1;
    double v = z[k];
    for (const auto& [i, m] : lcol_[k]) v -= m * w[i];
    w[pivot_row_[k]] = v;
  }
  return w;
}

UpdatableLU::UpdatableLU(const SparseLU& base)
    : n_(base.n_),
      base_fill_(base.fill_),
      lrow_(base.pivot_row_),
      lcol_(base.lcol_),
      diag_(base.pivot_),
      col_of_step_(base.pivot_col_) {
  rowgen_.assign(n_, 0);
  colgen_.assign(n_, 0);
  urows_.resize(n_);
  ucols_.resize(n_);
  seq_.resize(n_);
  pos_.resize(n_);
  step_of_col_.resize(n_);
  for (std::size_t k = 0; k < n_; ++k) {
    seq_[k] = k;
    pos_[k] = k;
    step_of_col_[col_of_step_[k]] = k;
  }
  // Base U entries arrive column-wise as (earlier step l, u_lk); mirror them
  // into the row-wise view so row-spike elimination can walk row contents.
  for (std::size_t k = 0; k < n_; ++k) {
    for (const auto& [l, u] : base.ucol_[k]) {
      ucols_[k].push_back({l, u, 0});
      urows_[l].push_back({k, u, 0});
    }
  }
  spike_.assign(n_, 0.0);
  rowval_.assign(n_, 0.0);
  inrow_.assign(n_, 0);
}

Vector UpdatableLU::solve(Vector b) const {
  HSLB_EXPECTS(b.size() == n_);
  // y = R L^{-1} b, kept row-indexed (step s lives at b[lrow_[s]]); zero
  // pivot-row values skip their L column — the hypersparsity fast path.
  for (std::size_t k = 0; k < n_; ++k) {
    const double t = b[lrow_[k]];
    if (t == 0.0) continue;
    for (const auto& [i, m] : lcol_[k]) b[i] -= m * t;
  }
  for (const RowEta& e : retas_) {
    double acc = 0.0;
    for (const auto& [s, mult] : e.terms) acc += mult * b[lrow_[s]];
    if (acc != 0.0) b[lrow_[e.target]] -= acc;
  }
  // Backward: U x = y along the current elimination order, descending.
  Vector x(n_, 0.0);
  for (std::size_t kk = n_; kk > 0; --kk) {
    const std::size_t s = seq_[kk - 1];
    const double xv = b[lrow_[s]] / diag_[s];
    x[col_of_step_[s]] = xv;
    if (xv == 0.0) continue;
    for (const UEntry& e : ucols_[s]) {
      if (e.gen == rowgen_[e.other]) b[lrow_[e.other]] -= e.value * xv;
    }
  }
  return x;
}

Vector UpdatableLU::solve_entering(Vector b) {
  HSLB_EXPECTS(b.size() == n_);
  for (std::size_t k = 0; k < n_; ++k) {
    const double t = b[lrow_[k]];
    if (t == 0.0) continue;
    for (const auto& [i, m] : lcol_[k]) b[i] -= m * t;
  }
  for (const RowEta& e : retas_) {
    double acc = 0.0;
    for (const auto& [s, mult] : e.terms) acc += mult * b[lrow_[s]];
    if (acc != 0.0) b[lrow_[e.target]] -= acc;
  }
  spike_ = b;  // the post-L, post-R vector IS the Forrest-Tomlin spike
  spike_valid_ = true;
  Vector x(n_, 0.0);
  for (std::size_t kk = n_; kk > 0; --kk) {
    const std::size_t s = seq_[kk - 1];
    const double xv = b[lrow_[s]] / diag_[s];
    x[col_of_step_[s]] = xv;
    if (xv == 0.0) continue;
    for (const UEntry& e : ucols_[s]) {
      if (e.gen == rowgen_[e.other]) b[lrow_[e.other]] -= e.value * xv;
    }
  }
  return x;
}

Vector UpdatableLU::solve_transpose(Vector b) const {
  HSLB_EXPECTS(b.size() == n_);
  // U^T z = b along the elimination order, ascending; z in step space.
  Vector z(n_, 0.0);
  for (std::size_t kk = 0; kk < n_; ++kk) {
    const std::size_t s = seq_[kk];
    const double zk = b[col_of_step_[s]] / diag_[s];
    z[s] = zk;
    if (zk == 0.0) continue;
    for (const UEntry& e : urows_[s]) {
      if (e.gen == colgen_[e.other]) b[col_of_step_[e.other]] -= e.value * zk;
    }
  }
  // R^T: each eta (I - e_t m^T) transposes to z[s] -= m_s z[t], reverse order.
  for (auto it = retas_.rbegin(); it != retas_.rend(); ++it) {
    const double zt = z[it->target];
    if (zt == 0.0) continue;
    for (const auto& [s, mult] : it->terms) z[s] -= mult * zt;
  }
  // L^T w = z, descending creation order, gather form.
  Vector w(n_, 0.0);
  for (std::size_t kk = n_; kk > 0; --kk) {
    const std::size_t k = kk - 1;
    double v = z[k];
    for (const auto& [i, m] : lcol_[k]) v -= m * w[i];
    w[lrow_[k]] = v;
  }
  return w;
}

UpdatableLU::UpdateResult UpdatableLU::update(std::size_t basis_pos) {
  HSLB_EXPECTS(spike_valid_);
  HSLB_EXPECTS(basis_pos < n_);
  spike_valid_ = false;
  // Steps keep their basis position for life, so the step to replace is a
  // direct inverse lookup.
  const std::size_t t = step_of_col_[basis_pos];

  // Live entries of row t seed the row-spike scatter; they are processed in
  // current elimination order (a min-heap on pos_), which is exactly the
  // order triangularity demands — fill from eliminating against row c only
  // lands at positions beyond pos_[c].
  heap_.clear();
  for (const UEntry& e : urows_[t]) {
    if (e.gen != colgen_[e.other]) continue;
    if (!inrow_[e.other]) {
      inrow_[e.other] = 1;
      rowval_[e.other] = e.value;
      heap_.emplace_back(pos_[e.other], e.other);
      std::push_heap(heap_.begin(), heap_.end(),
                     std::greater<std::pair<std::size_t, std::size_t>>{});
    } else {
      rowval_[e.other] += e.value;
    }
  }
  // Row t and (old) column t are dead from here on; bumping the stamps
  // before eliminating keeps their stale entries out of the fill walk.
  ++rowgen_[t];
  ++colgen_[t];

  double newdiag = spike_[lrow_[t]];
  double spike_max = 0.0;
  RowEta eta;
  eta.target = t;
  const auto cmp = std::greater<std::pair<std::size_t, std::size_t>>{};
  while (!heap_.empty()) {
    std::pop_heap(heap_.begin(), heap_.end(), cmp);
    const std::size_t c = heap_.back().second;
    heap_.pop_back();
    const double val = rowval_[c];
    rowval_[c] = 0.0;
    inrow_[c] = 0;
    if (val == 0.0) continue;
    const double mult = val / diag_[c];
    eta.terms.push_back({c, mult});
    // Row c's entry in the incoming spike column cancels into the diagonal.
    newdiag -= mult * spike_[lrow_[c]];
    for (const UEntry& e : urows_[c]) {
      if (e.gen != colgen_[e.other]) continue;
      if (!inrow_[e.other]) {
        inrow_[e.other] = 1;
        rowval_[e.other] = -mult * e.value;
        heap_.emplace_back(pos_[e.other], e.other);
        std::push_heap(heap_.begin(), heap_.end(), cmp);
      } else {
        rowval_[e.other] -= mult * e.value;
      }
    }
  }

  for (std::size_t s = 0; s < n_; ++s)
    spike_max = std::max(spike_max, std::fabs(spike_[lrow_[s]]));
  if (!std::isfinite(newdiag) ||
      std::fabs(newdiag) <= 1e-10 * std::max(1.0, spike_max)) {
    return UpdateResult::Unstable;  // factorization now invalid
  }

  // Commit: new diagonal, spike column, cyclic permutation of t to the end.
  // The elimination left row t with only its diagonal, and the old column t
  // is fully replaced; drop both stored lists (their entries in OTHER
  // rows/columns die by the generation bumps, but the lists owned by t
  // itself carry stamps of the surviving partners and must go explicitly,
  // or a later re-update of this step would seed from ghost entries).
  diag_[t] = newdiag;
  urows_[t].clear();
  ucols_[t].clear();
  std::size_t added = 0;
  for (std::size_t s = 0; s < n_; ++s) {
    if (s == t) continue;
    const double v = spike_[lrow_[s]];
    if (v == 0.0) continue;
    ucols_[t].push_back({s, v, rowgen_[s]});
    urows_[s].push_back({t, v, colgen_[t]});
    ++added;
  }
  const std::size_t old_pos = pos_[t];
  seq_.erase(seq_.begin() + static_cast<std::ptrdiff_t>(old_pos));
  seq_.push_back(t);
  for (std::size_t i = old_pos; i < n_; ++i) pos_[seq_[i]] = i;

  update_fill_ += added + eta.terms.size();
  if (!eta.terms.empty()) retas_.push_back(std::move(eta));
  ++updates_;
  return UpdateResult::Ok;
}

Vector lstsq(const Matrix& a, std::span<const double> b) {
  return QR(a).solve(b);
}

}  // namespace hslb::linalg
