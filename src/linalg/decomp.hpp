// Matrix decompositions and linear solvers:
//   - Cholesky (SPD solves for the Levenberg-Marquardt normal equations),
//   - Householder QR (rank-revealing enough for our least-squares sizes),
//   - LU with partial pivoting (general square solves: simplex basis),
//   - SparseLU with Markowitz pivoting (simplex basis refactorization on
//     the sparse column view; solves skip exact zeros, so hypersparse
//     right-hand sides cost O(reached nonzeros), not O(n^2)),
//   - UpdatableLU: a SparseLU wrapped with Forrest-Tomlin column
//     replacement, so a simplex pivot updates the factors in place instead
//     of growing a product-form eta file.
#pragma once

#include <cstdint>
#include <optional>

#include "linalg/matrix.hpp"
#include "linalg/sparse.hpp"

namespace hslb::linalg {

/// Cholesky factorization A = L L^T of a symmetric positive-definite matrix.
/// Returns std::nullopt if A is not (numerically) positive definite.
class Cholesky {
 public:
  static std::optional<Cholesky> factor(const Matrix& a);

  /// Solves A x = b.
  Vector solve(std::span<const double> b) const;

  const Matrix& lower() const { return l_; }

 private:
  explicit Cholesky(Matrix l) : l_(std::move(l)) {}
  Matrix l_;
};

/// Householder QR factorization A = Q R for rows >= cols.
class QR {
 public:
  explicit QR(const Matrix& a);

  /// Least-squares solve: minimizes ||A x - b||_2. Requires full column
  /// rank (throws ContractViolation on numerically rank-deficient R).
  Vector solve(std::span<const double> b) const;

  /// Absolute value of the smallest diagonal entry of R (rank indicator).
  double min_abs_diag_r() const;

 private:
  Matrix qr_;           // Householder vectors below diagonal, R on/above
  Vector tau_;          // Householder coefficients
  std::size_t rows_, cols_;
};

/// LU factorization with partial pivoting: P A = L U.
class LU {
 public:
  /// Returns std::nullopt if A is singular to working precision.
  static std::optional<LU> factor(const Matrix& a, double pivot_tol = 1e-12);

  /// Solves A x = b.
  Vector solve(std::span<const double> b) const;

  /// Solves A^T x = b.
  Vector solve_transpose(std::span<const double> b) const;

 private:
  LU(Matrix lu, std::vector<std::size_t> perm)
      : lu_(std::move(lu)), perm_(std::move(perm)) {}
  Matrix lu_;
  std::vector<std::size_t> perm_;
};

/// Sparse LU factorization with Markowitz pivoting.
///
/// Factors a square matrix given as sparse columns (the simplex basis: a
/// mix of structural columns and slack singletons). The pivot at each
/// elimination step minimizes the Markowitz count (r-1)(c-1) among entries
/// passing a relative threshold test, which keeps fill-in — and therefore
/// the flop count of every subsequent FTRAN/BTRAN — near the nonzero count
/// of the basis itself. Both solves skip exact zeros in the right-hand
/// side, so hypersparse inputs (a unit vector, a two-nonzero cut column)
/// touch only the entries they can reach.
class SparseLU {
 public:
  /// Returns std::nullopt when the matrix is singular to working
  /// precision (no entry passes the threshold test at some step).
  /// Each column's entries must carry strictly increasing row indices.
  static std::optional<SparseLU> factor(
      std::size_t n, const std::vector<std::vector<SparseEntry>>& cols,
      double threshold = 0.1);

  /// Solves A x = b; b is indexed by rows, the result by columns.
  Vector solve(Vector b) const;

  /// Solves A^T x = b; b is indexed by columns, the result by rows.
  Vector solve_transpose(Vector b) const;

  /// Fill: stored nonzeros of L and U including the n pivots.
  std::size_t nnz() const { return fill_; }

 private:
  SparseLU() = default;
  friend class UpdatableLU;

  std::size_t n_ = 0;
  std::size_t fill_ = 0;
  std::vector<std::size_t> pivot_row_;  // r_k, original row of step k
  std::vector<std::size_t> pivot_col_;  // c_k, original column of step k
  std::vector<double> pivot_;           // U diagonal of step k
  /// L column k: multipliers (original row i, m_ik), i pivotal later.
  std::vector<std::vector<SparseEntry>> lcol_;
  /// U row k: (original column j, u_kj), j pivotal later. U^T scatter solve.
  std::vector<std::vector<SparseEntry>> urow_;
  /// U column of step k: (earlier step l, u_lk). Backward scatter solve.
  std::vector<std::vector<SparseEntry>> ucol_;
};

/// Forrest-Tomlin updatable factorization of a simplex basis.
///
/// Wraps a fresh SparseLU in the maintained form B = L R^{-1} U: L is the
/// static lower factor of the initial Markowitz factorization, R a file of
/// row etas accumulated by updates, and U an upper factor kept triangular
/// under a mutable elimination order. Replacing basis column p:
///
///   1. the spike v = R L^{-1} a_q (captured by the preceding
///      solve_entering call) becomes the new column of U at p's step t;
///   2. step t cyclically permutes to the end of the elimination order, so
///      the old row t — now a below-diagonal row spike — is eliminated
///      against the interior rows it crosses; the multipliers become one
///      new row eta of R;
///   3. the new diagonal is what remains of the spike after that
///      elimination; when it is negligible next to the spike's scale the
///      update is rejected (Unstable) and the caller must refactorize.
///
/// Interior U rows are never modified numerically — only row/column t are
/// deleted (by generation stamps, lazily skipped in solves) and the spike
/// column inserted — which is what keeps fill growth near the spike nonzero
/// count instead of the O(m) a product-form eta pays on dense directions.
class UpdatableLU {
 public:
  explicit UpdatableLU(const SparseLU& base);

  /// Solves B x = b; b is indexed by rows, the result by basis positions.
  Vector solve(Vector b) const;

  /// Solves B^T x = b; b is indexed by basis positions, result by rows.
  Vector solve_transpose(Vector b) const;

  /// solve() that also captures the post-L, post-R spike for a subsequent
  /// update() of whichever basis position the caller pivots on.
  Vector solve_entering(Vector b);

  enum class UpdateResult { Ok, Unstable };

  /// Forrest-Tomlin replacement of basis column `basis_pos` with the column
  /// last passed to solve_entering. On Unstable the factorization is left
  /// invalid and the caller MUST refactorize from scratch.
  UpdateResult update(std::size_t basis_pos);

  /// Stored factor nonzeros: the fresh L+U fill plus everything updates
  /// appended (spike columns and row-eta terms; entries invalidated by
  /// updates still count — this is the storage-growth view the adaptive
  /// refactorization trigger watches).
  std::size_t nnz() const { return base_fill_ + update_fill_; }

  /// Fresh-factorization fill (L+U nonzeros incl. diagonals).
  std::size_t base_fill() const { return base_fill_; }

  /// Nonzeros appended by updates since factorization.
  std::size_t update_fill() const { return update_fill_; }

  /// Column replacements applied since factorization.
  std::size_t updates() const { return updates_; }

 private:
  /// One stored U entry with the partner's generation at insertion time; the
  /// entry is live while the stamp still matches (lazy deletion).
  struct UEntry {
    std::size_t other;  ///< partner step (column step in urows_, row in ucols_)
    double value;
    std::uint32_t gen;
  };

  std::size_t n_ = 0;
  std::size_t base_fill_ = 0;
  std::size_t update_fill_ = 0;
  std::size_t updates_ = 0;

  // Static L (never modified by updates).
  std::vector<std::size_t> lrow_;  ///< original row of step k (creation order)
  std::vector<std::vector<SparseEntry>> lcol_;

  // R: row etas appended by updates, applied in order after L^{-1}.
  struct RowEta {
    std::size_t target;               ///< step whose row was eliminated
    std::vector<SparseEntry> terms;   ///< (pivotal step s, multiplier)
  };
  std::vector<RowEta> retas_;

  // U in step space under a mutable elimination order.
  std::vector<double> diag_;
  std::vector<std::size_t> col_of_step_;  ///< fixed: basis position of step
  std::vector<std::size_t> step_of_col_;  ///< its inverse
  std::vector<std::uint32_t> rowgen_, colgen_;
  std::vector<std::vector<UEntry>> urows_, ucols_;
  std::vector<std::size_t> seq_;  ///< steps in current elimination order
  std::vector<std::size_t> pos_;  ///< position of each step within seq_

  // Spike captured by solve_entering (row-indexed, post L and R).
  Vector spike_;
  bool spike_valid_ = false;

  // update() workspaces (reserve-once).
  std::vector<double> rowval_;
  std::vector<std::uint8_t> inrow_;
  std::vector<std::pair<std::size_t, std::size_t>> heap_;  // (pos, step)
};

/// Convenience: least-squares solution via QR.
Vector lstsq(const Matrix& a, std::span<const double> b);

}  // namespace hslb::linalg
