// Matrix decompositions and linear solvers:
//   - Cholesky (SPD solves for the Levenberg-Marquardt normal equations),
//   - Householder QR (rank-revealing enough for our least-squares sizes),
//   - LU with partial pivoting (general square solves: simplex basis).
#pragma once

#include <optional>

#include "linalg/matrix.hpp"

namespace hslb::linalg {

/// Cholesky factorization A = L L^T of a symmetric positive-definite matrix.
/// Returns std::nullopt if A is not (numerically) positive definite.
class Cholesky {
 public:
  static std::optional<Cholesky> factor(const Matrix& a);

  /// Solves A x = b.
  Vector solve(std::span<const double> b) const;

  const Matrix& lower() const { return l_; }

 private:
  explicit Cholesky(Matrix l) : l_(std::move(l)) {}
  Matrix l_;
};

/// Householder QR factorization A = Q R for rows >= cols.
class QR {
 public:
  explicit QR(const Matrix& a);

  /// Least-squares solve: minimizes ||A x - b||_2. Requires full column
  /// rank (throws ContractViolation on numerically rank-deficient R).
  Vector solve(std::span<const double> b) const;

  /// Absolute value of the smallest diagonal entry of R (rank indicator).
  double min_abs_diag_r() const;

 private:
  Matrix qr_;           // Householder vectors below diagonal, R on/above
  Vector tau_;          // Householder coefficients
  std::size_t rows_, cols_;
};

/// LU factorization with partial pivoting: P A = L U.
class LU {
 public:
  /// Returns std::nullopt if A is singular to working precision.
  static std::optional<LU> factor(const Matrix& a, double pivot_tol = 1e-12);

  /// Solves A x = b.
  Vector solve(std::span<const double> b) const;

  /// Solves A^T x = b.
  Vector solve_transpose(std::span<const double> b) const;

 private:
  LU(Matrix lu, std::vector<std::size_t> perm)
      : lu_(std::move(lu)), perm_(std::move(perm)) {}
  Matrix lu_;
  std::vector<std::size_t> perm_;
};

/// Convenience: least-squares solution via QR.
Vector lstsq(const Matrix& a, std::span<const double> b);

}  // namespace hslb::linalg
