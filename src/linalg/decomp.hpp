// Matrix decompositions and linear solvers:
//   - Cholesky (SPD solves for the Levenberg-Marquardt normal equations),
//   - Householder QR (rank-revealing enough for our least-squares sizes),
//   - LU with partial pivoting (general square solves: simplex basis),
//   - SparseLU with Markowitz pivoting (simplex basis refactorization on
//     the sparse column view; solves skip exact zeros, so hypersparse
//     right-hand sides cost O(reached nonzeros), not O(n^2)).
#pragma once

#include <optional>

#include "linalg/matrix.hpp"
#include "linalg/sparse.hpp"

namespace hslb::linalg {

/// Cholesky factorization A = L L^T of a symmetric positive-definite matrix.
/// Returns std::nullopt if A is not (numerically) positive definite.
class Cholesky {
 public:
  static std::optional<Cholesky> factor(const Matrix& a);

  /// Solves A x = b.
  Vector solve(std::span<const double> b) const;

  const Matrix& lower() const { return l_; }

 private:
  explicit Cholesky(Matrix l) : l_(std::move(l)) {}
  Matrix l_;
};

/// Householder QR factorization A = Q R for rows >= cols.
class QR {
 public:
  explicit QR(const Matrix& a);

  /// Least-squares solve: minimizes ||A x - b||_2. Requires full column
  /// rank (throws ContractViolation on numerically rank-deficient R).
  Vector solve(std::span<const double> b) const;

  /// Absolute value of the smallest diagonal entry of R (rank indicator).
  double min_abs_diag_r() const;

 private:
  Matrix qr_;           // Householder vectors below diagonal, R on/above
  Vector tau_;          // Householder coefficients
  std::size_t rows_, cols_;
};

/// LU factorization with partial pivoting: P A = L U.
class LU {
 public:
  /// Returns std::nullopt if A is singular to working precision.
  static std::optional<LU> factor(const Matrix& a, double pivot_tol = 1e-12);

  /// Solves A x = b.
  Vector solve(std::span<const double> b) const;

  /// Solves A^T x = b.
  Vector solve_transpose(std::span<const double> b) const;

 private:
  LU(Matrix lu, std::vector<std::size_t> perm)
      : lu_(std::move(lu)), perm_(std::move(perm)) {}
  Matrix lu_;
  std::vector<std::size_t> perm_;
};

/// Sparse LU factorization with Markowitz pivoting.
///
/// Factors a square matrix given as sparse columns (the simplex basis: a
/// mix of structural columns and slack singletons). The pivot at each
/// elimination step minimizes the Markowitz count (r-1)(c-1) among entries
/// passing a relative threshold test, which keeps fill-in — and therefore
/// the flop count of every subsequent FTRAN/BTRAN — near the nonzero count
/// of the basis itself. Both solves skip exact zeros in the right-hand
/// side, so hypersparse inputs (a unit vector, a two-nonzero cut column)
/// touch only the entries they can reach.
class SparseLU {
 public:
  /// Returns std::nullopt when the matrix is singular to working
  /// precision (no entry passes the threshold test at some step).
  /// Each column's entries must carry strictly increasing row indices.
  static std::optional<SparseLU> factor(
      std::size_t n, const std::vector<std::vector<SparseEntry>>& cols,
      double threshold = 0.1);

  /// Solves A x = b; b is indexed by rows, the result by columns.
  Vector solve(Vector b) const;

  /// Solves A^T x = b; b is indexed by columns, the result by rows.
  Vector solve_transpose(Vector b) const;

  /// Fill: stored nonzeros of L and U including the n pivots.
  std::size_t nnz() const { return fill_; }

 private:
  SparseLU() = default;

  std::size_t n_ = 0;
  std::size_t fill_ = 0;
  std::vector<std::size_t> pivot_row_;  // r_k, original row of step k
  std::vector<std::size_t> pivot_col_;  // c_k, original column of step k
  std::vector<double> pivot_;           // U diagonal of step k
  /// L column k: multipliers (original row i, m_ik), i pivotal later.
  std::vector<std::vector<SparseEntry>> lcol_;
  /// U row k: (original column j, u_kj), j pivotal later. U^T scatter solve.
  std::vector<std::vector<SparseEntry>> urow_;
  /// U column of step k: (earlier step l, u_lk). Backward scatter solve.
  std::vector<std::vector<SparseEntry>> ucol_;
};

/// Convenience: least-squares solution via QR.
Vector lstsq(const Matrix& a, std::span<const double> b);

}  // namespace hslb::linalg
