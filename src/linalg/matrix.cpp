#include "linalg/matrix.hpp"

#include <cmath>
#include <sstream>

namespace hslb::linalg {

Matrix Matrix::from_rows(const std::vector<std::vector<double>>& rows) {
  HSLB_EXPECTS(!rows.empty());
  Matrix m(rows.size(), rows.front().size());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    HSLB_EXPECTS(rows[r].size() == m.cols());
    for (std::size_t c = 0; c < m.cols(); ++c) m(r, c) = rows[r][c];
  }
  return m;
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  return t;
}

Vector Matrix::mul(std::span<const double> x) const {
  HSLB_EXPECTS(x.size() == cols_);
  Vector y(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) y[r] = dot(row(r), x);
  return y;
}

Vector Matrix::mul_transpose(std::span<const double> y) const {
  HSLB_EXPECTS(y.size() == rows_);
  Vector x(cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const auto rr = row(r);
    for (std::size_t c = 0; c < cols_; ++c) x[c] += rr[c] * y[r];
  }
  return x;
}

Matrix Matrix::mul(const Matrix& other) const {
  HSLB_EXPECTS(cols_ == other.rows());
  Matrix out(rows_, other.cols());
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(i, k);
      if (a == 0.0) continue;
      for (std::size_t j = 0; j < other.cols(); ++j)
        out(i, j) += a * other(k, j);
    }
  }
  return out;
}

Matrix Matrix::gram() const {
  Matrix g(cols_, cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    const auto rr = row(r);
    for (std::size_t i = 0; i < cols_; ++i) {
      if (rr[i] == 0.0) continue;
      for (std::size_t j = i; j < cols_; ++j) g(i, j) += rr[i] * rr[j];
    }
  }
  for (std::size_t i = 0; i < cols_; ++i)
    for (std::size_t j = 0; j < i; ++j) g(i, j) = g(j, i);
  return g;
}

double Matrix::frobenius_norm() const {
  double acc = 0.0;
  for (double v : data_) acc += v * v;
  return std::sqrt(acc);
}

std::string Matrix::str(int precision) const {
  std::ostringstream out;
  out.precision(precision);
  for (std::size_t r = 0; r < rows_; ++r) {
    out << (r == 0 ? "[" : " ");
    for (std::size_t c = 0; c < cols_; ++c) out << (c ? ", " : "") << (*this)(r, c);
    out << (r + 1 == rows_ ? "]" : ";\n");
  }
  return out.str();
}

double dot(std::span<const double> a, std::span<const double> b) {
  HSLB_EXPECTS(a.size() == b.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

double norm2(std::span<const double> a) { return std::sqrt(dot(a, a)); }

double norm_inf(std::span<const double> a) {
  double m = 0.0;
  for (double v : a) m = std::max(m, std::fabs(v));
  return m;
}

Vector axpy(std::span<const double> a, double s, std::span<const double> b) {
  HSLB_EXPECTS(a.size() == b.size());
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] + s * b[i];
  return out;
}

Vector scale(std::span<const double> a, double s) {
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] * s;
  return out;
}

}  // namespace hslb::linalg
