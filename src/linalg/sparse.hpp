// Sparse matrix/vector kernels shared by the LP and MINLP layers.
//
// The MINLP allocations the HSLB models produce are structurally sparse:
// each selector binary appears in its task's SOS row, one linking row, and
// the budget row, so the constraint matrix holds O(3) nonzeros per column
// regardless of how many node counts a layout offers. Everything here is
// sized for that shape — compressed-sparse-column (CSC) primary storage, a
// transposed (CSR) companion for row-wise traversals, a triplet builder,
// and gather/scatter axpy building blocks for the simplex kernels.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "linalg/matrix.hpp"

namespace hslb::linalg {

/// One (index, value) entry of a sparse vector or of a matrix column/row.
struct SparseEntry {
  std::size_t index;
  double value;
};

/// One (row, col, value) coordinate for the triplet builder.
struct Triplet {
  std::size_t row;
  std::size_t col;
  double value;
};

/// Immutable compressed-sparse-column matrix. Entries within a column are
/// stored with strictly increasing row indices; explicit zeros are dropped
/// by the builders, so nnz() counts genuine nonzeros only.
class SparseMatrix {
 public:
  SparseMatrix() = default;

  /// Builds from coordinate triplets; duplicates at the same (row, col) are
  /// summed, and entries that sum to exactly zero are dropped.
  static SparseMatrix from_triplets(std::size_t rows, std::size_t cols,
                                    std::vector<Triplet> triplets);

  /// Builds from per-column entry lists (each list ordered by increasing
  /// row index, duplicate-free); exact zeros are dropped.
  static SparseMatrix from_columns(
      std::size_t rows, const std::vector<std::vector<SparseEntry>>& cols);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return col_start_.empty() ? 0 : col_start_.size() - 1; }
  std::size_t nnz() const { return entries_.size(); }

  /// Entries of column j, ordered by increasing row index.
  std::span<const SparseEntry> col(std::size_t j) const {
    HSLB_EXPECTS(j + 1 < col_start_.size());
    return {entries_.data() + col_start_[j], col_start_[j + 1] - col_start_[j]};
  }

  /// The transpose, i.e. the CSR view of this matrix: transposed().col(r)
  /// enumerates row r of *this ordered by increasing column index.
  SparseMatrix transposed() const;

  /// y = A x; x.size() must equal cols().
  Vector mul(std::span<const double> x) const;

  /// y = A^T x; x.size() must equal rows().
  Vector mul_transpose(std::span<const double> x) const;

 private:
  std::size_t rows_ = 0;
  std::vector<std::size_t> col_start_;  // size cols()+1
  std::vector<SparseEntry> entries_;    // .index = row
};

/// Dense-value / explicit-pattern accumulator for scatter kernels: values
/// live in a dense array for O(1) random access while the list of touched
/// indices makes iteration and reset proportional to the nonzero count.
class Scatter {
 public:
  explicit Scatter(std::size_t n) : value_(n, 0.0), touched_(n, 0) {}

  std::size_t size() const { return value_.size(); }

  /// value[i] += v, recording i in the pattern on first touch.
  void add(std::size_t i, double v) {
    HSLB_EXPECTS(i < value_.size());
    if (!touched_[i]) {
      touched_[i] = 1;
      pattern_.push_back(i);
    }
    value_[i] += v;
  }

  double operator[](std::size_t i) const {
    HSLB_EXPECTS(i < value_.size());
    return value_[i];
  }

  /// Indices touched since the last clear(), in first-touch order.
  std::span<const std::size_t> pattern() const { return pattern_; }

  /// Resets touched values/pattern in O(pattern size), not O(n).
  void clear() {
    for (std::size_t i : pattern_) {
      value_[i] = 0.0;
      touched_[i] = 0;
    }
    pattern_.clear();
  }

 private:
  std::vector<double> value_;
  // Byte-wide occupancy: the simplex dual-repair row builder hammers add()
  // hard enough that std::vector<bool>'s bit masking shows up in profiles.
  std::vector<std::uint8_t> touched_;
  std::vector<std::size_t> pattern_;
};

/// y += s * x for a sparse x scattered into a dense y. Requires x's indices
/// ascending (every builder in this module emits them that way), which lets
/// the bounds contract collapse to one check on the last entry instead of a
/// throwing branch inside the hot loop.
inline void axpy_scatter(double s, std::span<const SparseEntry> x,
                         std::span<double> y) {
  if (x.empty()) return;
  HSLB_EXPECTS(x.back().index < y.size());
  double* const yd = y.data();
  for (const auto& [i, v] : x) yd[i] += s * v;
}

/// Dot product of a sparse x against a dense y (gather). Requires x's
/// indices ascending, like axpy_scatter; the two independent accumulators
/// let the multiply-add chains overlap instead of serializing on one sum.
inline double dot_gather(std::span<const SparseEntry> x,
                         std::span<const double> y) {
  if (x.empty()) return 0.0;
  HSLB_EXPECTS(x.back().index < y.size());
  const double* const yd = y.data();
  const std::size_t nx = x.size();
  double acc0 = 0.0, acc1 = 0.0;
  std::size_t k = 0;
  for (; k + 1 < nx; k += 2) {
    acc0 += x[k].value * yd[x[k].index];
    acc1 += x[k + 1].value * yd[x[k + 1].index];
  }
  if (k < nx) acc0 += x[k].value * yd[x[k].index];
  return acc0 + acc1;
}

}  // namespace hslb::linalg
