#include "linalg/sparse.hpp"

#include <algorithm>

namespace hslb::linalg {

SparseMatrix SparseMatrix::from_triplets(std::size_t rows, std::size_t cols,
                                         std::vector<Triplet> triplets) {
  for (const Triplet& t : triplets) {
    HSLB_EXPECTS(t.row < rows && t.col < cols);
  }
  // Column-major, then row order within a column; duplicates end up adjacent.
  std::sort(triplets.begin(), triplets.end(),
            [](const Triplet& a, const Triplet& b) {
              if (a.col != b.col) return a.col < b.col;
              return a.row < b.row;
            });

  SparseMatrix out;
  out.rows_ = rows;
  out.col_start_.assign(cols + 1, 0);
  out.entries_.reserve(triplets.size());
  std::size_t i = 0;
  for (std::size_t j = 0; j < cols; ++j) {
    out.col_start_[j] = out.entries_.size();
    while (i < triplets.size() && triplets[i].col == j) {
      double v = triplets[i].value;
      const std::size_t r = triplets[i].row;
      ++i;
      while (i < triplets.size() && triplets[i].col == j && triplets[i].row == r) {
        v += triplets[i].value;
        ++i;
      }
      if (v != 0.0) out.entries_.push_back({r, v});
    }
  }
  out.col_start_[cols] = out.entries_.size();
  return out;
}

SparseMatrix SparseMatrix::from_columns(
    std::size_t rows, const std::vector<std::vector<SparseEntry>>& cols) {
  SparseMatrix out;
  out.rows_ = rows;
  out.col_start_.assign(cols.size() + 1, 0);
  std::size_t total = 0;
  for (const auto& c : cols) total += c.size();
  out.entries_.reserve(total);
  for (std::size_t j = 0; j < cols.size(); ++j) {
    out.col_start_[j] = out.entries_.size();
    std::size_t prev = 0;
    bool first = true;
    for (const auto& [r, v] : cols[j]) {
      HSLB_EXPECTS(r < rows);
      HSLB_EXPECTS(first || r > prev);  // strictly increasing row indices
      first = false;
      prev = r;
      if (v != 0.0) out.entries_.push_back({r, v});
    }
  }
  out.col_start_[cols.size()] = out.entries_.size();
  return out;
}

SparseMatrix SparseMatrix::transposed() const {
  SparseMatrix out;
  out.rows_ = cols();
  out.col_start_.assign(rows_ + 1, 0);
  // Counting sort by row index: count, prefix-sum, scatter.
  std::vector<std::size_t> count(rows_, 0);
  for (const SparseEntry& e : entries_) ++count[e.index];
  std::size_t acc = 0;
  for (std::size_t r = 0; r < rows_; ++r) {
    out.col_start_[r] = acc;
    acc += count[r];
  }
  out.col_start_[rows_] = acc;
  out.entries_.resize(entries_.size());
  std::vector<std::size_t> next(out.col_start_.begin(),
                                out.col_start_.end() - 1);
  for (std::size_t j = 0; j < cols(); ++j) {
    for (const SparseEntry& e : col(j)) {
      out.entries_[next[e.index]++] = {j, e.value};
    }
  }
  return out;
}

Vector SparseMatrix::mul(std::span<const double> x) const {
  HSLB_EXPECTS(x.size() == cols());
  Vector y(rows_, 0.0);
  for (std::size_t j = 0; j < cols(); ++j) {
    if (x[j] == 0.0) continue;
    axpy_scatter(x[j], col(j), y);
  }
  return y;
}

Vector SparseMatrix::mul_transpose(std::span<const double> x) const {
  HSLB_EXPECTS(x.size() == rows_);
  Vector y(cols(), 0.0);
  for (std::size_t j = 0; j < cols(); ++j) y[j] = dot_gather(col(j), x);
  return y;
}

}  // namespace hslb::linalg
