#include "cli/commands.hpp"

#include <cstdio>
#include <fstream>
#include <stdexcept>

#include "cesm/advisor.hpp"
#include "cesm/pipeline.hpp"
#include "common/contracts.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "fmo/driver.hpp"
#include "fmo/scenario.hpp"
#include "hslb/budget.hpp"
#include "hslb/registry.hpp"
#include "minlp/ampl.hpp"
#include "perf/fit.hpp"
#include "perf/modelio.hpp"
#include "service/service.hpp"
#include "sim/trace.hpp"
#include "substrates/registry_builtins.hpp"

namespace hslb::cli {

namespace {

Objective parse_objective(const std::string& s) {
  if (s == "min-max") return Objective::MinMax;
  if (s == "max-min") return Objective::MaxMin;
  if (s == "min-sum") return Objective::MinSum;
  HSLB_EXPECTS(!"unknown objective (use min-max, max-min, or min-sum)");
  return Objective::MinMax;
}

cesm::Resolution parse_resolution(long long r) {
  HSLB_EXPECTS(r == 1 || r == 8);
  return r == 1 ? cesm::Resolution::Deg1 : cesm::Resolution::EighthDeg;
}

/// Solver knobs shared by the cesm and fmo subcommands.
void apply_bnb_args(const Args& args, minlp::BnbOptions& bnb) {
  bnb.solver_threads =
      static_cast<std::size_t>(args.get_int("solver-threads", 1LL, 0));
  bnb.presolve = !args.flag("no-presolve");
  bnb.cut_age_limit = static_cast<std::size_t>(args.get_int(
      "cut-age-limit", static_cast<long long>(bnb.cut_age_limit), 0));
  bnb.kelley.lp.refactor_interval = static_cast<std::size_t>(args.get_int(
      "refactor-interval",
      static_cast<long long>(bnb.kelley.lp.refactor_interval), 1));
  bnb.kelley.lp.refactor_fill_ratio = args.get_double(
      "refactor-fill-ratio", bnb.kelley.lp.refactor_fill_ratio, 1.0);
}

/// Execute-step perturbation knobs shared by the cesm and fmo subcommands
/// (both option structs carry the same four fields).
void apply_execution_args(const Args& args, double& straggler_cv,
                          long long& fail_node, double& fail_time,
                          double& fail_downtime) {
  straggler_cv = args.get_double("straggler-cv", straggler_cv, 0.0);
  const bool has_node = args.value("fail-node").has_value();
  const bool has_time = args.value("fail-time").has_value();
  const bool has_downtime = args.value("fail-downtime").has_value();
  if (has_node && !has_time) {
    throw std::invalid_argument(
        "--fail-node requires --fail-time (when does the node go down?)");
  }
  if (has_time && !has_node) {
    throw std::invalid_argument(
        "--fail-time requires --fail-node (which node fails?)");
  }
  if (has_downtime && !has_node) {
    throw std::invalid_argument(
        "--fail-downtime requires --fail-node (which node fails?)");
  }
  fail_node = args.get_int("fail-node", fail_node, -1);
  fail_time = args.get_double("fail-time", fail_time, 0.0);
  fail_downtime = args.get_double("fail-downtime", fail_downtime, 0.0);
}

/// Closed-loop rebalancing knobs shared by the cesm and fmo subcommands.
/// The sub-flags only make sense once --adaptive turns the controller on.
void apply_rebalance_args(const Args& args, RebalancePolicy& rebalance) {
  rebalance.adaptive = args.flag("adaptive");
  const bool has_threshold = args.value("rebalance-threshold").has_value();
  const bool has_window = args.value("refit-window").has_value();
  const bool has_epochs = args.value("max-epochs").has_value();
  if (!rebalance.adaptive && (has_threshold || has_window || has_epochs)) {
    throw std::invalid_argument(
        "--rebalance-threshold/--refit-window/--max-epochs require "
        "--adaptive (they tune the closed-loop controller)");
  }
  if (has_threshold) {
    // One sensitivity knob for both monitors: execution imbalance and
    // prediction drift trigger at the same relative level.
    const double t = args.get_double("rebalance-threshold",
                                     rebalance.imbalance_threshold, 0.0);
    rebalance.imbalance_threshold = t;
    rebalance.drift_threshold = t;
  }
  rebalance.refit_window = static_cast<std::size_t>(args.get_int(
      "refit-window", static_cast<long long>(rebalance.refit_window), 1));
  rebalance.max_epochs = static_cast<std::size_t>(args.get_int(
      "max-epochs", static_cast<long long>(rebalance.max_epochs), 0));
}

/// --trace <path>: export the Execute step's trace (CSV, or JSON when the
/// path ends in .json).
void maybe_save_trace(const Args& args, const sim::Trace& trace) {
  if (const auto path = args.value("trace")) {
    trace.save(*path);
    std::printf("trace (%zu events) written to %s\n", trace.events.size(),
                path->c_str());
  }
}

}  // namespace

int usage(int code) {
  std::printf(
      "hslb — heuristic static load balancing via MINLP\n"
      "\n"
      "usage:\n"
      "  hslb fit    --bench bench.csv [--out models.csv] [--min-c C]\n"
      "              [--starts N]       fit T(n)=a/n+b*n^c+d per task\n"
      "  hslb solve  --models models.csv --nodes N [--objective min-max]\n"
      "                                 budgeted node allocation\n"
      "  hslb cesm   --resolution 1|8 --nodes N [--layout 1|2|3]\n"
      "              [--unconstrained-ocean] [--tsync S] [--threads T]\n"
      "              [--solver-threads S] [--no-presolve]\n"
      "              [--cut-age-limit K] [--refactor-interval R]\n"
      "              [--refactor-fill-ratio F] [--export-ampl out.mod]\n"
      "              [--trace out.csv] [--straggler-cv CV] [--fail-node I]\n"
      "              [--fail-time S] [--fail-downtime S] [--adaptive]\n"
      "              [--rebalance-threshold X] [--refit-window K]\n"
      "              [--max-epochs N]\n"
      "                                 full simulated pipeline\n"
      "  hslb fmo    --fragments F --nodes N [--peptide|--comm-bound]\n"
      "              [--minlp] [--objective min-max] [--threads T]\n"
      "              [--solver-threads S] [--no-presolve]\n"
      "              [--cut-age-limit K] [--refactor-interval R]\n"
      "              [--refactor-fill-ratio F] [--link-gb GB/s] [--mem-gb GB]\n"
      "              [--page-s-per-gb S] [--compute-only-model]\n"
      "              [--trace out.csv] [--straggler-cv CV] [--fail-node I]\n"
      "              [--fail-time S] [--fail-downtime S] [--adaptive]\n"
      "              [--rebalance-threshold X] [--refit-window K]\n"
      "              [--max-epochs N]\n"
      "                                 full simulated pipeline\n"
      "  hslb run    --substrate NAME [--variant V] [--tasks T] [--nodes N]\n"
      "              [--minlp] [--objective min-max] [--threads T]\n"
      "              [--fit-points P] [--system-seed S] [--bench-seed S]\n"
      "              [--bench-noise-cv CV] [--noise-cv CV] [--run-seed S]\n"
      "              [--link-gb GB/s] [--mem-gb GB] [--page-s-per-gb S]\n"
      "              [--trace out.csv] [--straggler-cv CV] [--fail-node I]\n"
      "              [--fail-time S] [--fail-downtime S] [--adaptive]\n"
      "              [--rebalance-threshold X] [--refit-window K]\n"
      "              [--max-epochs N]\n"
      "                                 any registered substrate, one engine\n"
      "  hslb substrates                list registered substrates/variants\n"
      "\n"
      "  hslb advise --resolution 1|8 [--layout 1|2|3] [--efficiency 0.5]\n"
      "              [--min-nodes A] [--max-nodes B]  node-count planning\n"
      "\n"
      "  hslb serve  --script reqs.txt [--threads T] [--batch B]\n"
      "              [--cache-capacity N] [--no-warm-start]\n"
      "              [--solver-threads S] [--responses out.txt]\n"
      "                                 allocation service (batched, cached)\n"
      "  hslb client --kind solve|fmo [--objective O] [--nodes N]\n"
      "              [--tasks name:a:b:c:d:min:max;...]\n"
      "              [--family water|peptide|comm] [--fragments F]\n"
      "              [--system-seed S] [--bench-seed S] [--noise-cv CV]\n"
      "              [--fit-points P] [--reps R] [--link-gb GB/s]\n"
      "              [--mem-gb GB] [--page-s-per-gb S] [--out reqs.txt]\n"
      "                                 format one service request line\n"
      "\n"
      "  serve replays a request script through the long-running allocation\n"
      "  service: exact repeats hit a bounded LRU solution cache, and every\n"
      "  miss warm-starts its branch-and-bound from the nearest cached\n"
      "  instance (--no-warm-start solves every miss cold). Requests are\n"
      "  processed in --batch-sized groups (part of the service definition,\n"
      "  like the B&B wave size); response payloads and the hit/miss\n"
      "  sequence are identical for every --threads value. client formats\n"
      "  one request per call and appends it to --out, so scripts are built\n"
      "  incrementally and replayed with serve.\n"
      "\n"
      "  --threads T parallelizes the Gather and Fit stages (0 = hardware\n"
      "  concurrency; allocations are identical for any T).\n"
      "  --solver-threads S parallelizes the branch-and-bound node re-solves\n"
      "  (0 = hardware concurrency; results are bit-identical for any S).\n"
      "  For fmo, --minlp routes Solve through the branch-and-bound instead\n"
      "  of the exact greedy (the path --solver-threads parallelizes).\n"
      "  --no-presolve turns the LP presolve off for cold solver LPs;\n"
      "  --cut-age-limit K retires an OA cut after K consecutive slack\n"
      "  observations (0 keeps every cut forever).\n"
      "  --refactor-interval R caps basis updates between LP refactorizations\n"
      "  (>= 1); --refactor-fill-ratio F (>= 1.0) refactorizes earlier when\n"
      "  the Forrest-Tomlin updated factors grow past F times the fresh fill.\n"
      "  For fmo, --comm-bound builds the communication-dominated cluster\n"
      "  (fragments carry halo volume and working-set memory); --link-gb /\n"
      "  --mem-gb / --page-s-per-gb give the machine a finite link and node\n"
      "  memory so the run charges for halo exchange and paging, and the\n"
      "  Solve step extends the fitted models with matching comm/memory\n"
      "  terms; --compute-only-model suppresses those terms (the paper's\n"
      "  compute-only regime) while the charges still apply at execution.\n"
      "  run drives the same four-step engine over any substrate registered\n"
      "  with the SubstrateRegistry (fmo, cesm, fmm, amrex out of the box;\n"
      "  `hslb substrates` lists them with their variants). --tasks/--nodes\n"
      "  size the scenario (0 = the substrate's defaults); substrates that\n"
      "  track a dynamic baseline also print HSLB vs DLB totals.\n"
      "  --trace exports the Execute step's per-task trace (CSV, or JSON\n"
      "  when the path ends in .json). --straggler-cv slows random nodes\n"
      "  down; --fail-node I --fail-time S [--fail-downtime S] injects a\n"
      "  node fail-stop (downtime omitted = permanent).\n"
      "  --adaptive closes the loop: the Execute step runs in epochs and a\n"
      "  monitor -> refit -> re-solve -> migrate controller reacts to\n"
      "  imbalance, cost drift and node failures (never triggered, the run\n"
      "  is bit-identical to the static pipeline). --rebalance-threshold X\n"
      "  sets both trigger levels (relative imbalance and drift, default\n"
      "  0.25/0.10); --refit-window K refits over the last K epochs'\n"
      "  observations (default 4); --max-epochs N stops monitoring after N\n"
      "  epochs (0 = the whole run).\n");
  return code;
}

int cmd_fit(const Args& args) {
  const auto bench_path = args.value("bench");
  HSLB_EXPECTS(bench_path.has_value());
  const auto table = perf::BenchTable::load(*bench_path);

  perf::FitOptions opt;
  opt.min_c = args.get_double("min-c", 1.0, 0.0);
  opt.num_starts = static_cast<std::size_t>(args.get_int("starts", 24LL, 1));
  const auto fits = perf::fit_all(table, opt);

  Table out({"task", "a", "b", "c", "d", "R^2", "RMSE"});
  std::vector<perf::NamedModel> models;
  for (const auto& [task, fit] : fits) {
    out.add_row({task, Table::num(fit.model.a, 4), Table::num(fit.model.b, 8),
                 Table::num(fit.model.c, 4), Table::num(fit.model.d, 4),
                 Table::num(fit.r2, 5), Table::num(fit.rmse, 4)});
    models.push_back({task, fit.model, 1, 0});
  }
  std::printf("%s", out.str().c_str());
  if (const auto out_path = args.value("out")) {
    perf::save_models(*out_path, models);
    std::printf("models written to %s\n", out_path->c_str());
  }
  return 0;
}

int cmd_solve(const Args& args) {
  const auto models_path = args.value("models");
  HSLB_EXPECTS(models_path.has_value());
  const long long nodes = args.get_int("nodes", 0LL, 1);
  HSLB_EXPECTS(nodes >= 1);  // --nodes is required; the fallback trips this
  const auto objective = parse_objective(args.get("objective", "min-max"));

  const auto named = perf::load_models(*models_path);
  std::vector<BudgetTask> tasks;
  for (const auto& m : named) {
    tasks.push_back(BudgetTask{m.task, m.model, std::max<long long>(1, m.min_nodes),
                               m.max_nodes > 0 ? m.max_nodes : nodes});
  }
  const auto alloc = solve_budget(tasks, nodes, objective);
  std::printf("%s objective over %zu tasks, %lld-node budget:\n\n%s",
              to_string(objective).c_str(), tasks.size(), nodes,
              alloc.str().c_str());
  return 0;
}

int cmd_cesm(const Args& args) {
  const auto r = parse_resolution(args.get_int("resolution", 1LL, 1));
  const long long nodes = args.get_int("nodes", 128LL, 1);
  cesm::PipelineOptions opt;
  opt.layout = static_cast<cesm::Layout>(args.get_int("layout", 1LL, 1, 3));
  opt.ocean_constrained = !args.flag("unconstrained-ocean");
  opt.tsync = args.get_double(
      "tsync", std::numeric_limits<double>::infinity(), 0.0);
  // 0 = hardware concurrency for both thread counts.
  opt.threads = static_cast<std::size_t>(args.get_int("threads", 0LL, 0));
  apply_bnb_args(args, opt.bnb);
  apply_execution_args(args, opt.straggler_cv, opt.fail_node, opt.fail_time,
                       opt.fail_downtime);
  apply_rebalance_args(args, opt.rebalance);

  const auto res = cesm::run_pipeline(r, nodes, opt);

  Table t({"component", "nodes", "fit R^2", "predicted s", "actual s"});
  for (cesm::Component c : cesm::kComponents) {
    const auto i = cesm::index(c);
    t.add_row({cesm::to_string(c),
               Table::num(static_cast<long long>(res.solution.nodes[i])),
               Table::num(res.fits[i].r2, 4),
               Table::num(res.solution.predicted_seconds[i], 2),
               Table::num(res.actual_seconds[i], 2)});
  }
  std::printf("CESM %s, %s, %lld nodes%s\n\n%s", cesm::to_string(r),
              cesm::to_string(opt.layout), nodes,
              opt.ocean_constrained ? "" : " (unconstrained ocean)",
              t.str().c_str());
  std::printf("total: predicted %.2f s, actual %.2f s "
              "(bnb: %zu nodes, %zu cuts, %.3f s, %s)\n",
              res.solution.predicted_total, res.actual_total,
              res.solution.stats.nodes, res.solution.stats.cuts,
              res.solution.stats.seconds,
              minlp::to_string(res.solution.stats.status).c_str());
  std::printf("\n%s", res.report.str().c_str());
  if (!res.coupled.completed)
    std::printf("WARNING: the coupled run could not complete (permanent node "
                "failure)\n");
  maybe_save_trace(args, res.coupled.trace);

  if (const auto path = args.value("export-ampl")) {
    std::array<perf::Model, 4> models;
    for (cesm::Component c : cesm::kComponents)
      models[cesm::index(c)] = res.fits[cesm::index(c)].model;
    auto problem = cesm::make_problem(r, opt.layout, nodes, models,
                                      opt.ocean_constrained);
    problem.tsync = opt.tsync;
    minlp::AmplOptions ampl;
    ampl.header = strings::format("CESM %s %s, %lld nodes (Table I layout %d)",
                                  cesm::to_string(r),
                                  cesm::to_string(opt.layout), nodes,
                                  static_cast<int>(opt.layout));
    std::ofstream out(*path);
    HSLB_EXPECTS(out.good());
    out << minlp::to_ampl(cesm::build_layout_minlp(problem), ampl);
    std::printf("AMPL model written to %s\n", path->c_str());
  }
  return 0;
}

int cmd_fmo(const Args& args) {
  const long long fragments = args.get_int("fragments", 48LL, 1);
  const long long nodes = args.get_int("nodes", fragments * 16, 1);
  fmo::PipelineOptions opt;
  opt.objective = parse_objective(args.get("objective", "min-max"));
  // 0 = hardware concurrency for both thread counts.
  opt.threads = static_cast<std::size_t>(args.get_int("threads", 0LL, 0));
  opt.solve_with_minlp = args.flag("minlp");
  apply_bnb_args(args, opt.bnb);
  apply_execution_args(args, opt.run.straggler_cv, opt.run.fail_node,
                       opt.run.fail_time, opt.run.fail_downtime);
  apply_rebalance_args(args, opt.rebalance);

  // Machine extensions: finite link bandwidth / node memory make the run
  // charge for halo exchange and paging; --compute-only-model keeps the
  // Solve step blind to those charges (the paper's original model).
  const bool has_link = args.value("link-gb").has_value();
  const bool has_mem = args.value("mem-gb").has_value();
  if (args.value("page-s-per-gb").has_value() && !has_mem) {
    throw std::invalid_argument(
        "--page-s-per-gb requires --mem-gb (paging needs a memory capacity)");
  }
  if (has_link || has_mem) {
    sim::Machine m =
        sim::Machine::intrepid_partition(static_cast<std::size_t>(nodes));
    if (has_link) m.link_gb_per_s = args.get_double("link-gb", 0.0, 0.0);
    if (has_mem) m.memory_gb_per_node = args.get_double("mem-gb", 0.0, 0.0);
    m.page_s_per_gb = args.get_double("page-s-per-gb", 0.0, 0.0);
    opt.run.machine = m;
  }
  opt.machine_cost_terms = !args.flag("compute-only-model");

  if (args.flag("comm-bound") && args.flag("peptide")) {
    throw std::invalid_argument(
        "--comm-bound and --peptide are mutually exclusive (pick one system)");
  }
  const std::string variant =
      args.flag("comm-bound") ? "comm" : args.flag("peptide") ? "peptide" : "water";
  const auto sys =
      fmo::make_system(variant, static_cast<std::size_t>(fragments));
  fmo::CostModel cost;
  const auto res = fmo::run_pipeline(sys, cost, nodes, opt);

  std::printf("%s: %zu fragments on %lld nodes (%s objective)\n",
              sys.name.c_str(), sys.num_fragments(), nodes,
              to_string(opt.objective).c_str());
  std::printf("fits: mean R^2 %.4f (min %.4f)\n", res.mean_r2, res.min_r2);
  std::printf("HSLB: %.3f s total (SCC %.3f s pred %.3f, dimers %.3f s), "
              "efficiency %.3f\n",
              res.hslb.total_seconds, res.hslb.scc_seconds,
              res.predicted_scc_seconds, res.hslb.dimer_seconds,
              res.hslb.efficiency(nodes));
  std::printf("DLB : %.3f s total, efficiency %.3f  =>  HSLB speedup %.2fx\n",
              res.dlb.total_seconds, res.dlb.efficiency(nodes),
              res.dlb.total_seconds / res.hslb.total_seconds);
  if (res.hslb.comm_seconds > 0.0 || res.hslb.page_seconds > 0.0) {
    std::printf("machine charges: comm %.3f s, paging %.3f s (task-seconds)\n",
                res.hslb.comm_seconds, res.hslb.page_seconds);
  }
  std::printf("\n%s", res.report.str().c_str());
  if (!res.hslb.completed)
    std::printf("WARNING: the static HSLB run could not complete (permanent "
                "node failure); DLB completed: %s\n",
                res.dlb.completed ? "yes" : "no");
  maybe_save_trace(args, res.hslb.trace);
  return 0;
}

int cmd_substrates(const Args& args) {
  (void)args;
  substrates::register_builtin_substrates();
  Table t({"substrate", "variants", "description"});
  for (const auto& info : SubstrateRegistry::instance().list()) {
    std::string variants;
    for (const auto& v : info.variants) {
      if (!variants.empty()) variants += ", ";
      variants += v;
    }
    t.add_row({info.name, variants, info.description});
  }
  std::printf("%s\nrun one with: hslb run --substrate NAME [--variant V]\n",
              t.str().c_str());
  return 0;
}

int cmd_run(const Args& args) {
  substrates::register_builtin_substrates();
  const auto substrate = args.value("substrate");
  if (!substrate.has_value()) {
    throw std::invalid_argument(
        "run requires --substrate NAME (list them with `hslb substrates`)");
  }

  ScenarioSpec spec;
  spec.substrate = *substrate;
  spec.variant = args.get("variant", std::string());
  spec.tasks = args.get_int("tasks", 0LL, 0);
  spec.nodes = args.get_int("nodes", 0LL, 0);
  spec.system_seed =
      static_cast<std::uint64_t>(args.get_int("system-seed", 3LL, 0));
  spec.bench_seed =
      static_cast<std::uint64_t>(args.get_int("bench-seed", 42LL, 0));
  spec.bench_noise_cv =
      args.get_double("bench-noise-cv", spec.bench_noise_cv, 0.0);
  spec.fit_points = args.get_int("fit-points", spec.fit_points, 2);
  spec.minlp = args.flag("minlp");
  spec.objective = parse_objective(args.get("objective", "min-max"));
  spec.noise_cv = args.get_double("noise-cv", spec.noise_cv, 0.0);
  spec.run_seed = static_cast<std::uint64_t>(args.get_int("run-seed", 7LL, 0));
  apply_execution_args(args, spec.straggler_cv, spec.fail_node, spec.fail_time,
                       spec.fail_downtime);
  apply_rebalance_args(args, spec.rebalance);
  if (args.value("page-s-per-gb").has_value() &&
      !args.value("mem-gb").has_value()) {
    throw std::invalid_argument(
        "--page-s-per-gb requires --mem-gb (paging needs a memory capacity)");
  }
  spec.link_gb_per_s = args.get_double("link-gb", spec.link_gb_per_s, 0.0);
  spec.memory_gb_per_node = args.get_double("mem-gb", spec.memory_gb_per_node, 0.0);
  spec.page_s_per_gb = args.get_double("page-s-per-gb", 0.0, 0.0);

  const auto app = SubstrateRegistry::instance().make(spec);

  PipelineOptions opt;
  opt.threads = static_cast<std::size_t>(args.get_int("threads", 0LL, 0));
  opt.rebalance = spec.rebalance;
  const auto run = Pipeline(opt).run(*app);

  std::printf("%s\n\n%s", spec.str().c_str(), run.report.str().c_str());
  if (auto* baseline = dynamic_cast<BaselineReporter*>(app.get())) {
    const double hslb = baseline->hslb_total_seconds();
    const double dlb = baseline->dlb_total_seconds();
    std::printf("HSLB %.3f s vs DLB %.3f s  =>  speedup %.2fx\n", hslb, dlb,
                dlb / hslb);
  }
  if (!run.report.exec_completed)
    std::printf("WARNING: the run could not complete (permanent node "
                "failure under a static schedule)\n");
  maybe_save_trace(args, run.trace);
  return 0;
}

int cmd_advise(const Args& args) {
  const auto r = parse_resolution(args.get_int("resolution", 1LL, 1));
  const auto layout =
      static_cast<cesm::Layout>(args.get_int("layout", 1LL, 1, 3));

  std::array<perf::Model, 4> models;
  for (cesm::Component c : cesm::kComponents)
    models[cesm::index(c)] = cesm::ground_truth(r, c);

  cesm::AdvisorOptions opt;
  opt.min_nodes = args.get_int("min-nodes", 128LL, 1);
  opt.max_nodes = args.get_int("max-nodes", 40960LL, 1);
  opt.efficiency_floor = args.get_double("efficiency", 0.5, 0.0, 1.0);
  const auto advice =
      cesm::advise_node_count(r, layout, models, true, opt);

  Table t({"nodes", "predicted s", "scaling efficiency"});
  for (const auto& pt : advice.sweep) {
    t.add_row({Table::num(static_cast<long long>(pt.nodes)),
               Table::num(pt.predicted_seconds, 2),
               Table::num(pt.efficiency, 3)});
  }
  std::printf("%s\n", t.str().c_str());
  std::printf("cost-efficient request (efficiency >= %.2f): %lld nodes "
              "(%.2f s predicted)\n",
              opt.efficiency_floor, advice.cost_efficient_nodes,
              advice.cost_efficient_seconds);
  std::printf("shortest time to solution: %lld nodes (%.2f s predicted)\n",
              advice.fastest_nodes, advice.fastest_seconds);
  return 0;
}

int cmd_serve(const Args& args) {
  const auto script_path = args.value("script");
  if (!script_path.has_value())
    throw std::invalid_argument("serve requires --script requests.txt");
  const auto script = service::load_script_file(*script_path);

  service::ServiceOptions opt;
  opt.threads = static_cast<std::size_t>(args.get_int("threads", 1LL, 0));
  opt.batch = static_cast<std::size_t>(args.get_int("batch", 8LL, 1));
  opt.cache_capacity =
      static_cast<std::size_t>(args.get_int("cache-capacity", 64LL, 1));
  opt.warm_start = !args.flag("no-warm-start");
  apply_bnb_args(args, opt.bnb);

  service::AllocationService server(opt);
  const auto responses = server.run_script(script);

  for (std::size_t i = 0; i < responses.size(); ++i) {
    const auto& r = responses[i];
    std::printf("[%3zu] %-4s %s\n", i,
                r.cache_hit ? "HIT" : (r.warm_seeded ? "WARM" : "COLD"),
                r.to_line().c_str());
  }
  std::printf("\n%s", server.report().str().c_str());

  if (const auto out_path = args.value("responses")) {
    std::ofstream out(*out_path);
    if (!out)
      throw std::invalid_argument("cannot write responses to " + *out_path);
    // Payload lines only — the replay-determinism artifact: identical for
    // every --threads value.
    for (const auto& r : responses) out << r.to_line() << "\n";
  }
  return 0;
}

int cmd_client(const Args& args) {
  service::Request r;
  const std::string kind = args.get("kind", "solve");
  if (kind == "solve") {
    r.kind = service::RequestKind::Solve;
  } else if (kind == "fmo") {
    r.kind = service::RequestKind::Fmo;
  } else {
    throw std::invalid_argument("--kind must be solve or fmo");
  }
  r.objective = parse_objective(args.get("objective", "min-max"));
  r.budget = args.get_int("nodes", r.budget, 1);
  if (r.kind == service::RequestKind::Solve) {
    const auto tasks = args.value("tasks");
    if (!tasks.has_value()) {
      throw std::invalid_argument(
          "solve requests need --tasks name:a:b:c:d:min:max[;...]");
    }
    // Round-trip through the parser so malformed specs fail here, in the
    // client, not later in the server.
    r.tasks = service::parse_request("solve tasks=" + *tasks).tasks;
  } else {
    r.family = args.get("family", "water");
    r.fragments = args.get_int("fragments", 24LL, 1);
    r.system_seed =
        static_cast<std::uint64_t>(args.get_int("system-seed", 3LL, 0));
    r.bench_seed =
        static_cast<std::uint64_t>(args.get_int("bench-seed", 42LL, 0));
    r.noise_cv = args.get_double("noise-cv", 0.03, 0.0);
    r.fit_points = args.get_int("fit-points", 5LL, 2);
    r.repetitions = args.get_int("reps", 1LL, 1);
    r.link_gb = args.get_double("link-gb", r.link_gb, 0.0);
    r.mem_gb = args.get_double("mem-gb", r.mem_gb, 0.0);
    r.page_s_per_gb = args.get_double("page-s-per-gb", 0.0, 0.0);
  }

  // Canonicalize first: the client validates and normalizes, so scripts
  // contain exactly what the server will hash.
  const auto line = service::format_request(service::canonicalize(r));
  std::printf("%s\n", line.c_str());
  if (const auto out_path = args.value("out")) {
    std::ofstream out(*out_path, std::ios::app);
    if (!out)
      throw std::invalid_argument("cannot append request to " + *out_path);
    out << line << "\n";
  }
  return 0;
}

}  // namespace hslb::cli
