// Entry point of the `hslb` tool; see commands.hpp for the subcommands.
#include <cstdio>
#include <exception>
#include <string>

#include "cli/commands.hpp"

int main(int argc, char** argv) {
  using namespace hslb::cli;
  if (argc < 2) return usage(1);
  const std::string cmd = argv[1];
  if (cmd == "help" || cmd == "--help" || cmd == "-h") return usage(0);

  try {
    if (cmd == "fit") {
      return cmd_fit(Args(argc - 1, argv + 1, {}, {"bench", "out", "min-c",
                                                   "starts"}));
    }
    if (cmd == "solve") {
      return cmd_solve(
          Args(argc - 1, argv + 1, {}, {"models", "nodes", "objective"}));
    }
    if (cmd == "cesm") {
      return cmd_cesm(Args(argc - 1, argv + 1,
                           {"unconstrained-ocean", "no-presolve", "adaptive"},
                           {"resolution", "nodes", "layout", "tsync",
                            "export-ampl", "threads", "solver-threads",
                            "cut-age-limit", "refactor-interval",
                            "refactor-fill-ratio", "trace", "straggler-cv",
                            "fail-node", "fail-time", "fail-downtime",
                            "rebalance-threshold", "refit-window",
                            "max-epochs"}));
    }
    if (cmd == "fmo") {
      return cmd_fmo(Args(argc - 1, argv + 1,
                          {"peptide", "comm-bound", "minlp", "no-presolve",
                           "compute-only-model", "adaptive"},
                          {"fragments", "nodes", "objective", "threads",
                           "solver-threads", "cut-age-limit",
                           "refactor-interval", "refactor-fill-ratio",
                           "trace", "straggler-cv", "fail-node", "fail-time",
                           "fail-downtime", "link-gb", "mem-gb",
                           "page-s-per-gb", "rebalance-threshold",
                           "refit-window", "max-epochs"}));
    }
    if (cmd == "run") {
      return cmd_run(Args(argc - 1, argv + 1,
                          {"minlp", "no-presolve", "adaptive"},
                          {"substrate", "variant", "tasks", "nodes",
                           "objective", "threads", "fit-points", "system-seed",
                           "bench-seed", "bench-noise-cv", "noise-cv",
                           "run-seed", "trace", "straggler-cv", "fail-node",
                           "fail-time", "fail-downtime", "link-gb", "mem-gb",
                           "page-s-per-gb", "rebalance-threshold",
                           "refit-window", "max-epochs"}));
    }
    if (cmd == "substrates") {
      return cmd_substrates(Args(argc - 1, argv + 1, {}, {}));
    }
    if (cmd == "advise") {
      return cmd_advise(Args(argc - 1, argv + 1, {},
                             {"resolution", "layout", "min-nodes", "max-nodes",
                              "efficiency"}));
    }
    if (cmd == "serve") {
      return cmd_serve(Args(argc - 1, argv + 1,
                            {"no-warm-start", "no-presolve"},
                            {"script", "threads", "batch", "cache-capacity",
                             "solver-threads", "cut-age-limit",
                             "refactor-interval", "refactor-fill-ratio",
                             "responses"}));
    }
    if (cmd == "client") {
      return cmd_client(Args(argc - 1, argv + 1, {},
                             {"kind", "objective", "nodes", "tasks", "family",
                              "fragments", "system-seed", "bench-seed",
                              "noise-cv", "fit-points", "reps", "link-gb",
                              "mem-gb", "page-s-per-gb", "out"}));
    }
    std::fprintf(stderr, "unknown command: %s\n\n", cmd.c_str());
    return usage(1);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
