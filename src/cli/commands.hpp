// Subcommand implementations of the `hslb` command-line tool — the
// "black box" of the paper's §V: "develop a 'black box' from HSLB which
// would allow anyone, especially scientists without experience at 'manual'
// optimization, to run CESM efficiently on supercomputers or clusters."
//
// Workflow commands (composable through CSV files):
//   hslb fit    --bench bench.csv [--out models.csv]
//   hslb solve  --models models.csv --nodes N [--objective min-max]
//
// Simulated end-to-end reproductions:
//   hslb cesm   --resolution 1|8 --nodes N [--layout 1|2|3]
//               [--unconstrained-ocean] [--tsync S] [--export-ampl f.mod]
//   hslb fmo    --fragments F --nodes N [--peptide]
//   hslb advise --resolution 1|8 [--layout L] [--efficiency 0.5]
#pragma once

#include "common/cli.hpp"

namespace hslb::cli {

int cmd_fit(const Args& args);
int cmd_solve(const Args& args);
int cmd_cesm(const Args& args);
int cmd_fmo(const Args& args);
/// Runs the four-step pipeline over any substrate registered with the
/// hslb::SubstrateRegistry (--substrate NAME), replacing per-substrate
/// dispatch chains with one registry lookup.
int cmd_run(const Args& args);
/// Lists the registered substrates and their variants.
int cmd_substrates(const Args& args);
int cmd_advise(const Args& args);
/// Allocation service: replays a request script through the batched,
/// cache-backed AllocationService (in-process harness; deterministic for
/// any --threads).
int cmd_serve(const Args& args);
/// Formats one service request line (and optionally appends it to a script
/// file) — the composable counterpart of `hslb serve --script`.
int cmd_client(const Args& args);

/// Prints usage to stdout; returns the given exit code.
int usage(int code);

}  // namespace hslb::cli
