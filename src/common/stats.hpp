// Small descriptive-statistics helpers shared by the fitting pipeline,
// the simulators, and the benchmark harnesses.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace hslb::stats {

/// Arithmetic mean. Requires a non-empty input.
double mean(std::span<const double> xs);

/// Unbiased sample variance (n-1 denominator). Requires size >= 2.
double variance(std::span<const double> xs);

/// Unbiased sample standard deviation. Requires size >= 2.
double stddev(std::span<const double> xs);

/// Smallest / largest element. Require non-empty input.
double min(std::span<const double> xs);
double max(std::span<const double> xs);

/// Sum of elements (empty input gives 0).
double sum(std::span<const double> xs);

/// Median (average of the two middle order statistics for even sizes).
/// Requires a non-empty input. Does not modify the input.
double median(std::span<const double> xs);

/// p-th percentile in [0, 100] by linear interpolation between order
/// statistics. Requires a non-empty input.
double percentile(std::span<const double> xs, double p);

/// Coefficient of determination R^2 = 1 - SS_res / SS_tot for observed ys
/// against model predictions. When all observations are identical, SS_tot
/// is zero; returns 1 if the residuals are also (numerically) zero and 0
/// otherwise. Requires equal non-zero lengths.
double r_squared(std::span<const double> observed, std::span<const double> predicted);

/// Sum of squared residuals between observed and predicted.
double sse(std::span<const double> observed, std::span<const double> predicted);

/// Root-mean-square error between observed and predicted.
double rmse(std::span<const double> observed, std::span<const double> predicted);

/// Load-imbalance ratio of a set of per-worker busy times:
/// max / mean - 1. Zero means perfectly balanced. Requires non-empty input
/// with positive mean.
double imbalance(std::span<const double> busy_times);

/// Parallel efficiency of `busy` work given total makespan * workers:
/// sum(busy) / (workers * makespan). Requires makespan > 0, non-empty input.
double efficiency(std::span<const double> busy_times, double makespan);

}  // namespace hslb::stats
