// Contract-checking macros in the style of the C++ Core Guidelines
// (I.6 "Prefer Expects() for expressing preconditions", I.8 Ensures()).
//
// Violations throw hslb::ContractViolation rather than aborting so that the
// test suite can assert on them and long-running benchmark harnesses fail
// with a diagnosable message instead of a core dump.
#pragma once

#include <stdexcept>
#include <string>

namespace hslb {

/// Thrown when an HSLB_EXPECTS / HSLB_ENSURES / HSLB_ASSERT condition fails.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void contract_fail(const char* kind, const char* cond,
                                       const char* file, int line) {
  throw ContractViolation(std::string(kind) + " failed: " + cond + " at " +
                          file + ":" + std::to_string(line));
}
}  // namespace detail

}  // namespace hslb

#define HSLB_EXPECTS(cond)                                                   \
  do {                                                                       \
    if (!(cond))                                                             \
      ::hslb::detail::contract_fail("precondition", #cond, __FILE__, __LINE__); \
  } while (false)

#define HSLB_ENSURES(cond)                                                   \
  do {                                                                       \
    if (!(cond))                                                             \
      ::hslb::detail::contract_fail("postcondition", #cond, __FILE__, __LINE__); \
  } while (false)

#define HSLB_ASSERT(cond)                                                    \
  do {                                                                       \
    if (!(cond))                                                             \
      ::hslb::detail::contract_fail("assertion", #cond, __FILE__, __LINE__); \
  } while (false)
