// Minimal CSV reading/writing used to persist benchmark tables between the
// Gather and Fit steps of the HSLB pipeline (mirrors how the authors passed
// hand-collected timing files to their AMPL scripts).
#pragma once

#include <string>
#include <vector>

namespace hslb::csv {

/// A parsed CSV document: a header row plus data rows of equal arity.
struct Document {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  /// Index of a named column; throws ContractViolation if absent.
  std::size_t column(const std::string& name) const;
};

/// Serializes rows with a header; cells containing commas/quotes/newlines
/// are quoted per RFC 4180.
std::string write(const Document& doc);

/// Parses RFC-4180-style CSV text (quoted cells, embedded commas and
/// newlines, doubled quotes). Throws ContractViolation on ragged rows or
/// unterminated quotes.
Document parse(const std::string& text);

/// Reads/writes a document to a file path; read throws on I/O failure.
Document read_file(const std::string& path);
void write_file(const std::string& path, const Document& doc);

}  // namespace hslb::csv
