#include "common/rng.hpp"

#include <cmath>
#include <numbers>

#include "common/contracts.hpp"

namespace hslb {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& w : state_) w = splitmix64(s);
  // xoshiro's all-zero state is invalid; SplitMix64 of any seed cannot
  // produce four zero words in a row, but guard anyway.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  HSLB_EXPECTS(lo <= hi);
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  HSLB_EXPECTS(lo <= hi);
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next());  // full 64-bit range
  // Rejection sampling to remove modulo bias.
  const std::uint64_t limit = max() - max() % span;
  std::uint64_t v = next();
  while (v >= limit) v = next();
  return lo + static_cast<std::int64_t>(v % span);
}

double Rng::normal() {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller; u1 in (0,1] to avoid log(0).
  double u1 = 1.0 - uniform();
  double u2 = uniform();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  have_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  HSLB_EXPECTS(stddev >= 0.0);
  return mean + stddev * normal();
}

double Rng::lognormal_unit_mean(double cv) {
  HSLB_EXPECTS(cv >= 0.0);
  if (cv == 0.0) return 1.0;
  // For lognormal with E[X]=1 and Var[X]=cv^2: sigma^2 = ln(1+cv^2),
  // mu = -sigma^2/2.
  const double sigma2 = std::log1p(cv * cv);
  const double mu = -0.5 * sigma2;
  return std::exp(normal(mu, std::sqrt(sigma2)));
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> p(n);
  for (std::size_t i = 0; i < n; ++i) p[i] = i;
  for (std::size_t i = n; i > 1; --i) {
    const auto j = static_cast<std::size_t>(
        uniform_int(0, static_cast<std::int64_t>(i) - 1));
    std::swap(p[i - 1], p[j]);
  }
  return p;
}

Rng Rng::spawn() { return Rng(next()); }

std::uint64_t derive_seed(std::uint64_t base, std::uint64_t stream) {
  // Two SplitMix64 steps keyed by base and stream; distinct streams land in
  // well-separated states even for adjacent (base, stream) pairs.
  std::uint64_t x = base ^ (0x9e3779b97f4a7c15ull * (stream + 1));
  std::uint64_t s = splitmix64(x);
  return splitmix64(s);
}

}  // namespace hslb
