// Deterministic, seedable random number generation.
//
// All stochastic pieces of the library (benchmark noise models, multistart
// fitting, synthetic molecule generation) draw from hslb::Rng so that every
// experiment in bench/ is exactly reproducible from its printed seed.
//
// The generator is xoshiro256++ (Blackman & Vigna), seeded through
// SplitMix64; both are tiny, fast, and have no external dependencies.
#pragma once

#include <cstdint>
#include <vector>

namespace hslb {

/// Mixes a base seed with a stream index into an independent child seed
/// (SplitMix64 avalanche). Used for deterministic per-task RNG streams:
/// probes and fits executed in parallel draw from derive_seed(seed, task)
/// so results are identical for every thread count and execution order.
std::uint64_t derive_seed(std::uint64_t base, std::uint64_t stream);

/// xoshiro256++ pseudo-random generator with convenience distributions.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four 64-bit state words via SplitMix64 of `seed`.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  /// UniformRandomBitGenerator interface.
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }
  result_type operator()() { return next(); }

  /// Next raw 64-bit value.
  std::uint64_t next();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Box-Muller (cached second deviate).
  double normal();

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Log-normal multiplicative factor with E[X] = 1 and the given
  /// coefficient of variation; used by the benchmark noise models.
  double lognormal_unit_mean(double cv);

  /// Random permutation of {0, ..., n-1}.
  std::vector<std::size_t> permutation(std::size_t n);

  /// Derive an independent child generator (for per-task streams).
  Rng spawn();

 private:
  std::uint64_t state_[4];
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace hslb
