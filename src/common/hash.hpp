// 64-bit FNV-1a hashing, shared by every signature scheme in the tree.
//
// The cut pool (minlp/cuts.cpp) buckets outer-approximation cuts by their
// discrete identity, and the allocation service (service/protocol.hpp) keys
// its solution cache by a canonicalized instance signature. Both need the
// same thing: an order-sensitive, deterministic, dependency-free hash of a
// mixed integer/float/string identity. This header is that one
// implementation — do not re-implement the constants elsewhere.
//
// Mixing conventions (stable across platforms, part of the on-disk /
// cross-run contract):
//   * integers are mixed as 8 little-endian bytes, so values hash the same
//     on any host this code compiles on;
//   * doubles are mixed by IEEE-754 bit pattern with -0.0 normalized to
//     +0.0 (callers quantize before mixing when tolerance matters — see
//     service::canonicalize);
//   * strings are mixed length-first, so {"ab","c"} and {"a","bc"} never
//     collide by concatenation.
#pragma once

#include <bit>
#include <cstdint>
#include <string_view>

namespace hslb::hash {

inline constexpr std::uint64_t kFnvOffset = 14695981039346656037ull;
inline constexpr std::uint64_t kFnvPrime = 1099511628211ull;

/// Incremental FNV-1a accumulator.
class Fnv1a {
 public:
  Fnv1a& mix_byte(unsigned char b) {
    h_ ^= b;
    h_ *= kFnvPrime;
    return *this;
  }

  /// Mixes 8 little-endian bytes (matches the cut pool's historical
  /// per-byte loop bit for bit).
  Fnv1a& mix(std::uint64_t v) {
    for (int b = 0; b < 8; ++b) mix_byte((v >> (8 * b)) & 0xffu);
    return *this;
  }

  Fnv1a& mix(std::int64_t v) { return mix(static_cast<std::uint64_t>(v)); }

  /// Mixes the IEEE-754 bit pattern; -0.0 hashes as +0.0 so the two equal
  /// values cannot land in different buckets.
  Fnv1a& mix(double v) {
    return mix(std::bit_cast<std::uint64_t>(v == 0.0 ? 0.0 : v));
  }

  /// Length-prefixed bytes.
  Fnv1a& mix(std::string_view s) {
    mix(static_cast<std::uint64_t>(s.size()));
    for (const char c : s) mix_byte(static_cast<unsigned char>(c));
    return *this;
  }

  std::uint64_t value() const { return h_; }

 private:
  std::uint64_t h_ = kFnvOffset;
};

/// Plain FNV-1a over a byte string (no length prefix): the textbook
/// definition, for tests and simple string keys.
std::uint64_t fnv1a_bytes(std::string_view s);

}  // namespace hslb::hash
