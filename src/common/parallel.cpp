#include "common/parallel.hpp"

#include "common/contracts.hpp"

namespace hslb {

namespace {

/// Innermost pool whose job body this thread is currently executing.
/// Catches same-pool reentrancy (which would deadlock behind the caller's
/// own in-flight job) while still allowing a body to drive a *different*
/// pool.
thread_local const ThreadPool* g_running_pool = nullptr;

struct RunningPoolScope {
  explicit RunningPoolScope(const ThreadPool* pool)
      : previous(g_running_pool) {
    g_running_pool = pool;
  }
  ~RunningPoolScope() { g_running_pool = previous; }
  const ThreadPool* previous;
};

}  // namespace

std::size_t ThreadPool::hardware_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

ThreadPool::ThreadPool(std::size_t threads)
    : size_(threads == 0 ? hardware_threads() : threads) {
  workers_.reserve(size_ - 1);
  for (std::size_t w = 1; w < size_; ++w)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  start_cv_.notify_all();
  for (auto& t : workers_) t.join();
}

void ThreadPool::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      start_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
    }
    {
      const RunningPoolScope scope(this);
      run_indices();
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--active_workers_ == 0) done_cv_.notify_all();
    }
  }
}

void ThreadPool::run_indices() {
  for (;;) {
    const std::size_t i = next_index_.fetch_add(1, std::memory_order_relaxed);
    if (i >= job_size_) return;
    try {
      (*body_)(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& body) {
  HSLB_EXPECTS(static_cast<bool>(body));
  HSLB_EXPECTS(g_running_pool != this);  // reentrancy would self-deadlock
  if (n == 0) return;
  if (size_ == 1 || n == 1) {
    const RunningPoolScope scope(this);
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  // Concurrent-caller guard: jobs from overlapping callers (e.g. two
  // Pipeline runs batched onto one service pool) run one at a time, in
  // submission order, each with the whole pool.
  std::lock_guard<std::mutex> submit(submit_mutex_);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    HSLB_ASSERT(body_ == nullptr);  // submit_mutex_ guarantees exclusivity
    body_ = &body;
    job_size_ = n;
    next_index_.store(0, std::memory_order_relaxed);
    first_error_ = nullptr;
    active_workers_ = workers_.size();
    ++generation_;
  }
  start_cv_.notify_all();
  {
    const RunningPoolScope scope(this);
    run_indices();  // the calling thread works too
  }
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] { return active_workers_ == 0; });
    body_ = nullptr;
    job_size_ = 0;
    error = first_error_;
  }
  if (error) std::rethrow_exception(error);
}

void parallel_for(std::size_t threads, std::size_t n,
                  const std::function<void(std::size_t)>& body) {
  ThreadPool pool(threads == 0 ? 0 : threads);
  pool.parallel_for(n, body);
}

}  // namespace hslb
