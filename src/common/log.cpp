#include "common/log.hpp"

#include <atomic>
#include <cstdio>

namespace hslb::log {

namespace {
std::atomic<Level> g_level{Level::Warn};

const char* level_name(Level level) {
  switch (level) {
    case Level::Trace: return "trace";
    case Level::Debug: return "debug";
    case Level::Info:  return "info";
    case Level::Warn:  return "warn";
    case Level::Error: return "error";
    case Level::Off:   return "off";
  }
  return "?";
}
}  // namespace

void set_level(Level level) { g_level.store(level, std::memory_order_relaxed); }

Level level() { return g_level.load(std::memory_order_relaxed); }

bool enabled(Level lvl) {
  return static_cast<int>(lvl) >= static_cast<int>(level());
}

void emit(Level lvl, const std::string& message) {
  std::fprintf(stderr, "[%s] %s\n", level_name(lvl), message.c_str());
}

}  // namespace hslb::log
