// Small string helpers used across modules and benches.
#pragma once

#include <string>
#include <vector>

namespace hslb::strings {

/// Splits on a single-character delimiter; keeps empty fields.
std::vector<std::string> split(const std::string& s, char delim);

/// Trims ASCII whitespace from both ends.
std::string trim(const std::string& s);

/// Joins elements with a separator.
std::string join(const std::vector<std::string>& parts, const std::string& sep);

/// Parses a double/long; throws ContractViolation on malformed input.
double to_double(const std::string& s);
long long to_int(const std::string& s);

/// printf-style formatting into a std::string.
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace hslb::strings
