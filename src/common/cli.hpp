// Tiny command-line parsing helper for the hslb tool and the examples.
//
// Supports `--flag`, `--key value`, `--key=value`, and positional
// arguments; unknown keys throw so typos fail loudly.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace hslb::cli {

class Args {
 public:
  /// Parses argv[1..); `known_flags` are boolean switches, `known_keys`
  /// expect a value. Anything not starting with "--" is positional.
  Args(int argc, const char* const* argv, std::set<std::string> known_flags,
       std::set<std::string> known_keys);

  bool flag(const std::string& name) const;

  /// Value of --key; empty when absent.
  std::optional<std::string> value(const std::string& key) const;

  /// Typed access with defaults.
  std::string get(const std::string& key, const std::string& fallback) const;
  long long get(const std::string& key, long long fallback) const;
  double get(const std::string& key, double fallback) const;

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::set<std::string> flags_set_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
  std::set<std::string> known_flags_, known_keys_;
};

}  // namespace hslb::cli
