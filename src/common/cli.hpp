// Tiny command-line parsing helper for the hslb tool and the examples.
//
// Supports `--flag`, `--key value`, `--key=value`, and positional
// arguments; unknown keys throw so typos fail loudly.
#pragma once

#include <limits>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace hslb::cli {

class Args {
 public:
  /// Parses argv[1..); `known_flags` are boolean switches, `known_keys`
  /// expect a value. Anything not starting with "--" is positional.
  Args(int argc, const char* const* argv, std::set<std::string> known_flags,
       std::set<std::string> known_keys);

  bool flag(const std::string& name) const;

  /// Value of --key; empty when absent.
  std::optional<std::string> value(const std::string& key) const;

  /// Typed access with defaults.
  std::string get(const std::string& key, const std::string& fallback) const;
  long long get(const std::string& key, long long fallback) const;
  double get(const std::string& key, double fallback) const;

  /// Validated integer access: the value must parse *fully* as a base-10
  /// integer and satisfy min_value <= v <= max_value; garbage ("abc",
  /// "1.5", "", trailing junk) or out-of-range input throws
  /// std::invalid_argument whose message names the flag, echoes the bad
  /// text, and states the accepted range. The fallback is returned as-is
  /// when the flag is absent (it is the caller's default, not user input).
  long long get_int(
      const std::string& key, long long fallback, long long min_value,
      long long max_value = std::numeric_limits<long long>::max()) const;

  /// Validated floating-point access (same contract; NaN is rejected).
  double get_double(
      const std::string& key, double fallback, double min_value,
      double max_value = std::numeric_limits<double>::infinity()) const;

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::set<std::string> flags_set_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
  std::set<std::string> known_flags_, known_keys_;
};

}  // namespace hslb::cli
