#include "common/strings.hpp"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>

#include "common/contracts.hpp"

namespace hslb::strings {

std::vector<std::string> split(const std::string& s, char delim) {
  std::vector<std::string> out;
  std::string cur;
  for (char ch : s) {
    if (ch == delim) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur += ch;
    }
  }
  out.push_back(cur);
  return out;
}

std::string trim(const std::string& s) {
  const char* ws = " \t\r\n\f\v";
  const auto b = s.find_first_not_of(ws);
  if (b == std::string::npos) return "";
  const auto e = s.find_last_not_of(ws);
  return s.substr(b, e - b + 1);
}

std::string join(const std::vector<std::string>& parts, const std::string& sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

double to_double(const std::string& s) {
  const std::string t = trim(s);
  HSLB_EXPECTS(!t.empty());
  char* end = nullptr;
  const double v = std::strtod(t.c_str(), &end);
  HSLB_EXPECTS(end == t.c_str() + t.size());
  return v;
}

long long to_int(const std::string& s) {
  const std::string t = trim(s);
  HSLB_EXPECTS(!t.empty());
  char* end = nullptr;
  const long long v = std::strtoll(t.c_str(), &end, 10);
  HSLB_EXPECTS(end == t.c_str() + t.size());
  return v;
}

std::string format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  HSLB_EXPECTS(needed >= 0);
  std::string out(static_cast<std::size_t>(needed), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  va_end(args_copy);
  return out;
}

}  // namespace hslb::strings
