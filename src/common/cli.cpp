#include "common/cli.hpp"

#include "common/contracts.hpp"
#include "common/strings.hpp"

namespace hslb::cli {

Args::Args(int argc, const char* const* argv, std::set<std::string> known_flags,
           std::set<std::string> known_keys)
    : known_flags_(std::move(known_flags)), known_keys_(std::move(known_keys)) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      const std::string key = arg.substr(0, eq);
      HSLB_EXPECTS(known_keys_.count(key) > 0);
      values_[key] = arg.substr(eq + 1);
      continue;
    }
    if (known_flags_.count(arg)) {
      flags_set_.insert(arg);
      continue;
    }
    HSLB_EXPECTS(known_keys_.count(arg) > 0);
    HSLB_EXPECTS(i + 1 < argc);  // --key requires a value
    values_[arg] = argv[++i];
  }
}

bool Args::flag(const std::string& name) const {
  HSLB_EXPECTS(known_flags_.count(name) > 0);
  return flags_set_.count(name) > 0;
}

std::optional<std::string> Args::value(const std::string& key) const {
  HSLB_EXPECTS(known_keys_.count(key) > 0);
  const auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string Args::get(const std::string& key, const std::string& fallback) const {
  const auto v = value(key);
  return v ? *v : fallback;
}

long long Args::get(const std::string& key, long long fallback) const {
  const auto v = value(key);
  return v ? strings::to_int(*v) : fallback;
}

double Args::get(const std::string& key, double fallback) const {
  const auto v = value(key);
  return v ? strings::to_double(*v) : fallback;
}

}  // namespace hslb::cli
