#include "common/cli.hpp"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <stdexcept>

#include "common/contracts.hpp"
#include "common/strings.hpp"

namespace hslb::cli {

namespace {

[[noreturn]] void bad_value(const std::string& key, const std::string& text,
                            const std::string& expected) {
  throw std::invalid_argument("invalid value for --" + key + ": '" + text +
                              "' (expected " + expected + ")");
}

std::string range_suffix(double lo, double hi) {
  std::string out = " >= " + strings::format("%g", lo);
  if (hi < std::numeric_limits<double>::infinity())
    out += " and <= " + strings::format("%g", hi);
  return out;
}

std::string range_suffix(long long lo, long long hi) {
  std::string out = " >= " + std::to_string(lo);
  if (hi < std::numeric_limits<long long>::max())
    out += " and <= " + std::to_string(hi);
  return out;
}

}  // namespace

Args::Args(int argc, const char* const* argv, std::set<std::string> known_flags,
           std::set<std::string> known_keys)
    : known_flags_(std::move(known_flags)), known_keys_(std::move(known_keys)) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      const std::string key = arg.substr(0, eq);
      HSLB_EXPECTS(known_keys_.count(key) > 0);
      values_[key] = arg.substr(eq + 1);
      continue;
    }
    if (known_flags_.count(arg)) {
      flags_set_.insert(arg);
      continue;
    }
    HSLB_EXPECTS(known_keys_.count(arg) > 0);
    HSLB_EXPECTS(i + 1 < argc);  // --key requires a value
    values_[arg] = argv[++i];
  }
}

bool Args::flag(const std::string& name) const {
  HSLB_EXPECTS(known_flags_.count(name) > 0);
  return flags_set_.count(name) > 0;
}

std::optional<std::string> Args::value(const std::string& key) const {
  HSLB_EXPECTS(known_keys_.count(key) > 0);
  const auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string Args::get(const std::string& key, const std::string& fallback) const {
  const auto v = value(key);
  return v ? *v : fallback;
}

long long Args::get(const std::string& key, long long fallback) const {
  const auto v = value(key);
  return v ? strings::to_int(*v) : fallback;
}

double Args::get(const std::string& key, double fallback) const {
  const auto v = value(key);
  return v ? strings::to_double(*v) : fallback;
}

long long Args::get_int(const std::string& key, long long fallback,
                        long long min_value, long long max_value) const {
  const auto v = value(key);
  if (!v) return fallback;
  const std::string t = strings::trim(*v);
  char* end = nullptr;
  errno = 0;
  const long long parsed = t.empty() ? 0 : std::strtoll(t.c_str(), &end, 10);
  if (t.empty() || end != t.c_str() + t.size() || errno == ERANGE)
    bad_value(key, *v, "an integer" + range_suffix(min_value, max_value));
  if (parsed < min_value || parsed > max_value)
    bad_value(key, *v, "an integer" + range_suffix(min_value, max_value));
  return parsed;
}

double Args::get_double(const std::string& key, double fallback,
                        double min_value, double max_value) const {
  const auto v = value(key);
  if (!v) return fallback;
  const std::string t = strings::trim(*v);
  char* end = nullptr;
  errno = 0;
  const double parsed = t.empty() ? 0.0 : std::strtod(t.c_str(), &end);
  if (t.empty() || end != t.c_str() + t.size() || std::isnan(parsed))
    bad_value(key, *v, "a number" + range_suffix(min_value, max_value));
  if (parsed < min_value || parsed > max_value)
    bad_value(key, *v, "a number" + range_suffix(min_value, max_value));
  return parsed;
}

}  // namespace hslb::cli
