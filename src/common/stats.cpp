#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"

namespace hslb::stats {

double mean(std::span<const double> xs) {
  HSLB_EXPECTS(!xs.empty());
  return sum(xs) / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  HSLB_EXPECTS(xs.size() >= 2);
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return acc / static_cast<double>(xs.size() - 1);
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double min(std::span<const double> xs) {
  HSLB_EXPECTS(!xs.empty());
  return *std::min_element(xs.begin(), xs.end());
}

double max(std::span<const double> xs) {
  HSLB_EXPECTS(!xs.empty());
  return *std::max_element(xs.begin(), xs.end());
}

double sum(std::span<const double> xs) {
  // Kahan summation: benchmark tables can mix O(1e-3) and O(1e4) values.
  double s = 0.0, c = 0.0;
  for (double x : xs) {
    double y = x - c;
    double t = s + y;
    c = (t - s) - y;
    s = t;
  }
  return s;
}

double median(std::span<const double> xs) { return percentile(xs, 50.0); }

double percentile(std::span<const double> xs, double p) {
  HSLB_EXPECTS(!xs.empty());
  HSLB_EXPECTS(p >= 0.0 && p <= 100.0);
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(rank));
  const auto hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double sse(std::span<const double> observed, std::span<const double> predicted) {
  HSLB_EXPECTS(observed.size() == predicted.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < observed.size(); ++i) {
    const double r = observed[i] - predicted[i];
    acc += r * r;
  }
  return acc;
}

double rmse(std::span<const double> observed, std::span<const double> predicted) {
  HSLB_EXPECTS(!observed.empty());
  return std::sqrt(sse(observed, predicted) / static_cast<double>(observed.size()));
}

double r_squared(std::span<const double> observed, std::span<const double> predicted) {
  HSLB_EXPECTS(!observed.empty());
  HSLB_EXPECTS(observed.size() == predicted.size());
  const double m = mean(observed);
  double ss_tot = 0.0;
  for (double y : observed) ss_tot += (y - m) * (y - m);
  const double ss_res = sse(observed, predicted);
  if (ss_tot <= 0.0) return ss_res <= 1e-30 ? 1.0 : 0.0;
  return 1.0 - ss_res / ss_tot;
}

double imbalance(std::span<const double> busy_times) {
  const double m = mean(busy_times);
  HSLB_EXPECTS(m > 0.0);
  return max(busy_times) / m - 1.0;
}

double efficiency(std::span<const double> busy_times, double makespan) {
  HSLB_EXPECTS(makespan > 0.0);
  HSLB_EXPECTS(!busy_times.empty());
  return sum(busy_times) /
         (makespan * static_cast<double>(busy_times.size()));
}

}  // namespace hslb::stats
