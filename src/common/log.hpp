// Leveled logging with a global severity threshold.
//
// The MINLP solver and simulators log node counts, cut statistics, and
// event traces at Debug/Trace level; benches run at Info.
#pragma once

#include <sstream>
#include <string>

namespace hslb::log {

enum class Level { Trace = 0, Debug = 1, Info = 2, Warn = 3, Error = 4, Off = 5 };

/// Sets/reads the process-wide threshold. Messages below it are dropped.
void set_level(Level level);
Level level();

/// True when messages at `level` would be emitted.
bool enabled(Level level);

/// Emits one formatted line ("[level] message") to stderr.
void emit(Level level, const std::string& message);

namespace detail {
class LineLogger {
 public:
  explicit LineLogger(Level level) : level_(level) {}
  ~LineLogger() { if (enabled(level_)) emit(level_, stream_.str()); }
  LineLogger(const LineLogger&) = delete;
  LineLogger& operator=(const LineLogger&) = delete;

  template <typename T>
  LineLogger& operator<<(const T& v) {
    if (enabled(level_)) stream_ << v;
    return *this;
  }

 private:
  Level level_;
  std::ostringstream stream_;
};
}  // namespace detail

inline detail::LineLogger trace() { return detail::LineLogger(Level::Trace); }
inline detail::LineLogger debug() { return detail::LineLogger(Level::Debug); }
inline detail::LineLogger info() { return detail::LineLogger(Level::Info); }
inline detail::LineLogger warn() { return detail::LineLogger(Level::Warn); }
inline detail::LineLogger error() { return detail::LineLogger(Level::Error); }

}  // namespace hslb::log
