// Fixed-size thread pool with a parallel_for / parallel_map API.
//
// The HSLB pipeline's Gather and Fit stages are embarrassingly parallel
// (independent probes, independent per-task fits). Determinism is preserved
// by construction: results are written by index, never in completion order,
// and callers derive any per-task randomness from the task index (see
// hslb::derive_seed), so the output is identical for every thread count.
//
// Workers are started once and reused across parallel_for calls; the
// calling thread participates in the work, so a pool of size 1 degenerates
// to a plain serial loop with no synchronization beyond one atomic.
//
// Concurrent external callers are safe: parallel_for calls issued from
// different threads against one pool are serialized in submission order
// (each job runs to completion with the full pool before the next starts),
// so overlapping hslb::Pipeline runs may share a pool and each still
// computes exactly what it would have computed alone — index-addressed
// writes plus job-at-a-time execution keep every caller's results
// identical for any thread count. What stays forbidden is *reentrancy*:
// a job body calling parallel_for on the pool that is running it would
// deadlock behind its own job, so that is rejected loudly.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace hslb {

class ThreadPool {
 public:
  /// `threads` = total workers incl. the calling thread; 0 means
  /// hardware_concurrency(). A pool of size 1 spawns no threads.
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total worker count (including the calling thread).
  std::size_t size() const { return size_; }

  /// Runs body(i) for every i in [0, n), distributing indices over the pool
  /// (atomic work-stealing counter). Blocks until all indices finished.
  /// The first exception thrown by any body is rethrown on the caller.
  /// Safe to call from multiple threads at once — overlapping jobs are
  /// serialized in submission order. Not reentrant: a body must not call
  /// parallel_for on the pool that is currently running it (asserts).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body);

  /// Like parallel_for, but collects fn(i) into a vector ordered by index.
  template <typename Fn>
  auto parallel_map(std::size_t n, Fn&& fn)
      -> std::vector<decltype(fn(std::size_t{}))> {
    std::vector<decltype(fn(std::size_t{}))> out(n);
    parallel_for(n, [&](std::size_t i) { out[i] = fn(i); });
    return out;
  }

  /// std::thread::hardware_concurrency with a floor of 1.
  static std::size_t hardware_threads();

 private:
  void worker_loop();
  void run_indices();

  std::size_t size_ = 1;
  std::vector<std::thread> workers_;

  /// Serializes external parallel_for callers: held from submission to
  /// completion, so concurrent jobs queue instead of clobbering the
  /// single-job state below.
  std::mutex submit_mutex_;
  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  bool stop_ = false;
  std::uint64_t generation_ = 0;   ///< bumped per parallel_for call
  std::size_t active_workers_ = 0; ///< workers still in run_indices()

  // Current job (valid while a parallel_for is in flight).
  const std::function<void(std::size_t)>* body_ = nullptr;
  std::size_t job_size_ = 0;
  std::atomic<std::size_t> next_index_{0};
  std::exception_ptr first_error_;
};

/// One-shot helper: parallel_for over a transient pool of `threads` workers
/// (serial when threads <= 1).
void parallel_for(std::size_t threads, std::size_t n,
                  const std::function<void(std::size_t)>& body);

}  // namespace hslb
