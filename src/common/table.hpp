// ASCII table rendering for the benchmark harnesses.
//
// Every bench/ binary reproduces a table or figure of the paper; this class
// renders them in a fixed-width layout comparable side by side with the
// published rows (see EXPERIMENTS.md).
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace hslb {

/// Column-aligned ASCII table with an optional title and rule lines.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Optional title printed above the table.
  void set_title(std::string title);

  /// Appends a row; must match the header arity.
  void add_row(std::vector<std::string> cells);

  /// Appends a horizontal rule (printed as a dashed line).
  void add_rule();

  /// Convenience: formats a double with the given precision.
  static std::string num(double v, int precision = 3);

  /// Convenience: formats an integer.
  static std::string num(long long v);

  /// Renders the full table.
  std::string str() const;

  std::size_t rows() const { return rows_.size(); }

  friend std::ostream& operator<<(std::ostream& os, const Table& t);

 private:
  struct Row {
    bool is_rule = false;
    std::vector<std::string> cells;
  };

  std::string title_;
  std::vector<std::string> headers_;
  std::vector<Row> rows_;
};

}  // namespace hslb
