#include "common/hash.hpp"

namespace hslb::hash {

std::uint64_t fnv1a_bytes(std::string_view s) {
  std::uint64_t h = kFnvOffset;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= kFnvPrime;
  }
  return h;
}

}  // namespace hslb::hash
