#include "common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "common/contracts.hpp"

namespace hslb {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  HSLB_EXPECTS(!headers_.empty());
}

void Table::set_title(std::string title) { title_ = std::move(title); }

void Table::add_row(std::vector<std::string> cells) {
  HSLB_EXPECTS(cells.size() == headers_.size());
  rows_.push_back(Row{false, std::move(cells)});
}

void Table::add_rule() { rows_.push_back(Row{true, {}}); }

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::num(long long v) { return std::to_string(v); }

std::string Table::str() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const Row& r : rows_) {
    if (r.is_rule) continue;
    for (std::size_t c = 0; c < r.cells.size(); ++c)
      widths[c] = std::max(widths[c], r.cells[c].size());
  }

  auto hline = [&] {
    std::string s = "+";
    for (std::size_t w : widths) s += std::string(w + 2, '-') + "+";
    s += "\n";
    return s;
  };
  auto line = [&](const std::vector<std::string>& cells) {
    std::string s = "|";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      s += " " + cells[c] + std::string(widths[c] - cells[c].size(), ' ') + " |";
    }
    s += "\n";
    return s;
  };

  std::ostringstream out;
  if (!title_.empty()) out << title_ << "\n";
  out << hline() << line(headers_) << hline();
  for (const Row& r : rows_) {
    if (r.is_rule)
      out << hline();
    else
      out << line(r.cells);
  }
  out << hline();
  return out.str();
}

std::ostream& operator<<(std::ostream& os, const Table& t) { return os << t.str(); }

}  // namespace hslb
