#include "common/csv.hpp"

#include <fstream>
#include <sstream>

#include "common/contracts.hpp"

namespace hslb::csv {

namespace {

bool needs_quoting(const std::string& cell) {
  return cell.find_first_of(",\"\n\r") != std::string::npos;
}

std::string quote(const std::string& cell) {
  if (!needs_quoting(cell)) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += "\"\"";
    else out += ch;
  }
  out += "\"";
  return out;
}

void write_row(std::ostringstream& out, const std::vector<std::string>& row) {
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (i) out << ',';
    out << quote(row[i]);
  }
  out << '\n';
}

}  // namespace

std::size_t Document::column(const std::string& name) const {
  for (std::size_t i = 0; i < header.size(); ++i)
    if (header[i] == name) return i;
  HSLB_EXPECTS(!"csv column not found");
  return 0;  // unreachable
}

std::string write(const Document& doc) {
  std::ostringstream out;
  write_row(out, doc.header);
  for (const auto& row : doc.rows) {
    HSLB_EXPECTS(row.size() == doc.header.size());
    write_row(out, row);
  }
  return out.str();
}

Document parse(const std::string& text) {
  std::vector<std::vector<std::string>> records;
  std::vector<std::string> record;
  std::string cell;
  bool in_quotes = false;
  bool cell_started = false;

  auto end_cell = [&] {
    record.push_back(cell);
    cell.clear();
    cell_started = false;
  };
  auto end_record = [&] {
    end_cell();
    records.push_back(record);
    record.clear();
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char ch = text[i];
    if (in_quotes) {
      if (ch == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          cell += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cell += ch;
      }
      continue;
    }
    switch (ch) {
      case '"':
        in_quotes = true;
        cell_started = true;
        break;
      case ',':
        end_cell();
        cell_started = true;  // a comma always opens the next cell
        break;
      case '\r':
        break;  // tolerate CRLF
      case '\n':
        end_record();
        break;
      default:
        cell += ch;
        cell_started = true;
        break;
    }
  }
  HSLB_EXPECTS(!in_quotes);  // unterminated quoted cell
  if (cell_started || !cell.empty() || !record.empty()) end_record();

  Document doc;
  HSLB_EXPECTS(!records.empty());
  doc.header = records.front();
  for (std::size_t r = 1; r < records.size(); ++r) {
    HSLB_EXPECTS(records[r].size() == doc.header.size());
    doc.rows.push_back(std::move(records[r]));
  }
  return doc;
}

Document read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  HSLB_EXPECTS(in.good());
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse(buf.str());
}

void write_file(const std::string& path, const Document& doc) {
  std::ofstream out(path, std::ios::binary);
  HSLB_EXPECTS(out.good());
  out << write(doc);
}

}  // namespace hslb::csv
