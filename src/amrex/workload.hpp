// AMReX-style mesh+particle workload: per-block fluid + particle cost.
//
// Models the load shape of block-structured AMR codes coupled to
// particles (AMReX; HemoCell's fluid+cell-mechanics steps): the domain is
// a fixed grid of mesh blocks, each timestep advances every block's fluid
// for a cost proportional to its cells PLUS a particle cost proportional
// to the particles living in the block, and a regrid/halo barrier joins
// the step — a wave. Fluid cost alone is perfectly uniform; the particles
// are where imbalance comes from.
//
// The "uniform" variant spreads particles evenly (near-balanced blocks —
// the regime where any balancer looks fine); "clustered" concentrates
// them with a seeded Gaussian cluster (a dense suspension / plasma bunch),
// producing the heavy blocks that static cost-aware allocation handles
// and uniform decomposition does not.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hslb/waveapp.hpp"

namespace hslb::amrex {

struct MeshOptions {
  /// Allocatable mesh blocks (one task per block).
  long long blocks = 16;
  /// Cells per block (fluid cost ~ cells).
  long long cells_per_block = 32768;
  /// Total particles distributed over the blocks.
  long long particles = 2000000;
  /// "uniform" or "clustered".
  std::string variant = "clustered";
  std::uint64_t seed = 3;
  /// Timesteps (waves).
  long long waves = 8;
};

/// Builds the mesh workload: per-block fluid+particle cost ->
/// ground-truth scaling models. Deterministic in the options.
WaveWorkload mesh_workload(const MeshOptions& options = {});

}  // namespace hslb::amrex
