#include "amrex/workload.hpp"

#include <cmath>
#include <stdexcept>

#include "common/contracts.hpp"
#include "common/rng.hpp"
#include "common/strings.hpp"

namespace hslb::amrex {

namespace {

/// Fluid-advance seconds per cell and particle-push seconds per particle
/// (typical stencil-vs-interpolation cost ratio; sets the time scale).
constexpr double kSecondsPerCell = 2e-6;
constexpr double kSecondsPerParticle = 5e-7;

}  // namespace

WaveWorkload mesh_workload(const MeshOptions& options) {
  HSLB_EXPECTS(options.blocks >= 1);
  HSLB_EXPECTS(options.cells_per_block >= 1);
  HSLB_EXPECTS(options.particles >= 0);
  HSLB_EXPECTS(options.waves >= 1);
  const bool clustered = options.variant == "clustered";
  if (!clustered && options.variant != "uniform") {
    throw std::invalid_argument("unknown amrex variant '" + options.variant +
                                "' (known: uniform, clustered)");
  }

  // Particle census per block. Uniform: an even split. Clustered: block
  // weights from a Gaussian bump over the block index line (center and
  // width drawn from the seed), so a few blocks hold most of the
  // suspension while far blocks keep a thin background.
  const auto B = static_cast<std::size_t>(options.blocks);
  std::vector<double> particles(B, 0.0);
  if (clustered) {
    Rng rng(derive_seed(options.seed, 0x6d65736ull));  // "mesh"
    const double center = rng.uniform(0.0, static_cast<double>(B));
    const double width = std::max(0.75, 0.12 * static_cast<double>(B));
    std::vector<double> weight(B, 0.0);
    double total = 0.0;
    for (std::size_t b = 0; b < B; ++b) {
      const double x = (static_cast<double>(b) + 0.5 - center) / width;
      weight[b] = 0.02 + std::exp(-0.5 * x * x);  // background + cluster
      total += weight[b];
    }
    for (std::size_t b = 0; b < B; ++b) {
      particles[b] =
          static_cast<double>(options.particles) * weight[b] / total;
    }
  } else {
    for (std::size_t b = 0; b < B; ++b) {
      particles[b] = static_cast<double>(options.particles) /
                     static_cast<double>(B);
    }
  }

  WaveWorkload wl;
  wl.name = "amrex-" + (options.variant.empty() ? "uniform" : options.variant);
  wl.waves = options.waves;
  // Regrid + flux-correction barrier closing each step, proportional to
  // the mesh surface the blocks exchange.
  wl.sync_overhead = 0.05;
  wl.tasks.reserve(B);
  for (std::size_t b = 0; b < B; ++b) {
    const double fluid =
        static_cast<double>(options.cells_per_block) * kSecondsPerCell;
    const double part = particles[b] * kSecondsPerParticle;
    const double s = fluid + part;

    WaveTask task;
    task.name = strings::format("block%02zu", b);
    // Stencil + particle work parallelizes over the block's nodes; the
    // halo exchange grows with the split surface (mildly superlinear in
    // ranks); packing/unpacking leaves a small serial floor.
    task.truth.a = 0.94 * s;
    task.truth.b = 0.004 * fluid;
    task.truth.c = 1.1;
    task.truth.d = 0.015 * s;
    // Working set: field data + particle AoS.
    task.memory_gb = static_cast<double>(options.cells_per_block) * 1e-7 +
                     particles[b] * 5e-8;
    wl.tasks.push_back(std::move(task));
  }
  return wl;
}

}  // namespace hslb::amrex
