#include "fmo/energy.hpp"

#include <cmath>

#include "common/contracts.hpp"
#include "common/rng.hpp"

namespace hslb::fmo {

namespace {

/// Deterministic per-fragment perturbation in [-0.5, 0.5) derived from the
/// fragment id (SplitMix-style hash through Rng).
double fragment_hash(std::size_t id) {
  Rng rng(0x1234abcdULL ^ (static_cast<std::uint64_t>(id) * 0x9e3779b9ULL));
  return rng.uniform() - 0.5;
}

/// Separation of two fragments from their stored centroids.
double separation(const Fragment& a, const Fragment& b) {
  double acc = 0.0;
  for (int k = 0; k < 3; ++k) {
    const double d = a.center[k] - b.center[k];
    acc += d * d;
  }
  return std::sqrt(acc);
}

}  // namespace

double monomer_energy(const Fragment& f) {
  HSLB_EXPECTS(f.basis_functions > 0);
  // ~ -76 Hartree per 25-bf water unit, plus a deterministic fragment
  // flavour so different fragments have distinguishable energies.
  const double waters = static_cast<double>(f.basis_functions) / 25.0;
  return -76.0 * waters + 0.05 * fragment_hash(f.id);
}

double scf_dimer_correction(const Fragment& a, const Fragment& b,
                            double separation_angstrom) {
  HSLB_EXPECTS(separation_angstrom > 0.0);
  // Hydrogen-bond-scale attraction (~ -8 kcal/mol ~ -0.0127 Ha at 2.8 A)
  // decaying exponentially, scaled by the pair's size.
  const double size =
      std::sqrt(static_cast<double>(a.basis_functions) *
                static_cast<double>(b.basis_functions)) /
      25.0;
  return -0.0127 * size * std::exp(-(separation_angstrom - 2.8) / 1.5);
}

double es_dimer_correction(const Fragment& a, const Fragment& b,
                           double separation_angstrom) {
  HSLB_EXPECTS(separation_angstrom > 0.0);
  // Classical dipole-dipole tail: ~ r^-3, much weaker than the SCF pairs.
  const double size =
      std::sqrt(static_cast<double>(a.basis_functions) *
                static_cast<double>(b.basis_functions)) /
      25.0;
  return -2.0e-3 * size / std::pow(separation_angstrom, 3.0);
}

EnergyBreakdown fmo2_energy(const System& sys) {
  EnergyBreakdown e;
  for (const auto& f : sys.fragments) e.monomer += monomer_energy(f);
  for (const auto& d : sys.scf_dimers) {
    e.scf_dimer += scf_dimer_correction(sys.fragments[d.i], sys.fragments[d.j],
                                        d.separation);
  }
  // ES pairs were not stored individually (only counted); recompute them
  // from the geometry: every pair not in the SCF list.
  std::vector<std::vector<bool>> is_scf(
      sys.fragments.size(), std::vector<bool>(sys.fragments.size(), false));
  for (const auto& d : sys.scf_dimers) is_scf[d.i][d.j] = true;
  for (std::size_t i = 0; i < sys.fragments.size(); ++i) {
    for (std::size_t j = i + 1; j < sys.fragments.size(); ++j) {
      if (is_scf[i][j]) continue;
      e.es_dimer += es_dimer_correction(
          sys.fragments[i], sys.fragments[j],
          separation(sys.fragments[i], sys.fragments[j]));
    }
  }
  return e;
}

}  // namespace hslb::fmo
