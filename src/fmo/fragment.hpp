// Fragment molecular orbital (FMO) workload description.
//
// FMO (Fedorov & Kitaura) partitions a molecule into fragments; the FMO2
// energy is assembled from fragment (monomer) SCF calculations iterated to
// self-consistent charge (SCC), plus pair (dimer) corrections: full SCF
// dimers for spatially close pairs and a cheap electrostatic (ES)
// approximation for separated pairs. In GAMESS the fragment calculations
// are distributed over GDDI processor groups. The title paper's insight:
// with *few large fragments of diverse size*, dynamic load balancing of
// fragments over equal-size groups wastes nodes, while HSLB can size each
// fragment's group by solving a min-max MINLP over fitted per-fragment
// performance models.
#pragma once

#include <array>
#include <cstddef>
#include <string>
#include <vector>

namespace hslb::fmo {

struct Fragment {
  std::size_t id = 0;
  std::string name;
  /// Number of atoms (drives integral counts).
  int atoms = 0;
  /// Number of basis functions: the size measure driving O(nbf^3) SCF cost.
  int basis_functions = 0;
  /// Centroid coordinates in Angstrom (for dimer cutoffs).
  std::array<double, 3> center{};
  /// GB of density/ESP halo data exchanged with *each* SCF neighbour per
  /// SCC iteration. 0 (the default) = communication-free workload; only
  /// the comm_cluster generator populates it.
  double halo_gb = 0.0;
  /// GB of working set (integrals, density matrices) the fragment's SCF
  /// spreads over its processor group. 0 = memory-free workload.
  double memory_gb = 0.0;
};

/// A pair of fragments requiring a full dimer SCF.
struct DimerPair {
  std::size_t i = 0;
  std::size_t j = 0;
  double separation = 0.0;  ///< centroid distance, Angstrom
};

/// A complete FMO system: fragments plus its dimer lists.
struct System {
  std::string name;
  std::vector<Fragment> fragments;
  std::vector<DimerPair> scf_dimers;  ///< near pairs: full dimer SCF
  std::size_t es_dimers = 0;          ///< far pairs: ES approximation count

  std::size_t num_fragments() const { return fragments.size(); }

  /// Total basis functions (system size indicator).
  long long total_basis_functions() const;

  /// max/min fragment basis functions: the "diverse size" ratio that makes
  /// DLB struggle and motivates HSLB.
  double size_diversity() const;

  /// Per-fragment count of SCF dimer partners — how many neighbours each
  /// fragment exchanges halo data with (the `pairs` factor of the comm
  /// cost term).
  std::vector<std::size_t> scf_neighbor_counts() const;
};

}  // namespace hslb::fmo
