// End-to-end FMO pipeline: the four HSLB steps (§III-F) wired to the FMO
// substrate, plus the DLB baseline for comparison.
//
//   1. Gather  — probe every fragment's monomer SCF at a few group sizes
//                (noisy observations of the ground-truth cost model);
//   2. Fit     — per-fragment performance models (Levenberg-Marquardt
//                multistart, R^2 diagnostics);
//   3. Solve   — min-max node allocation over the fitted models (exact
//                greedy; build_budget_minlp/branch-and-bound cross-check
//                available for small systems);
//   4. Execute — run the simulated FMO2 calculation under the static
//                allocation; run the DLB baseline on the same system.
#pragma once

#include <memory>

#include "fmo/cost.hpp"
#include "fmo/molecule.hpp"
#include "fmo/schedulers.hpp"
#include "hslb/budget.hpp"
#include "hslb/gather.hpp"
#include "hslb/objective.hpp"
#include "hslb/pipeline.hpp"
#include "minlp/bnb.hpp"
#include "perf/fit.hpp"

namespace hslb::fmo {

/// What one MINLP solve learned, exported for seeding a *later* pipeline's
/// Solve step (the allocation service's cross-instance warm starts). The
/// same idiom the closed-loop resolve() uses between epochs, lifted across
/// pipeline runs: the donor's node counts become the candidate incumbent,
/// its optimum a re-linearization point, and its cut pool is reused
/// verbatim only when the fitted parameters match exactly.
struct SolveSeed {
  /// Donor allocation, one node count per task in task order (empty = no
  /// incumbent seed). Clamped to the new instance's per-task bounds.
  std::vector<long long> nodes_by_task;
  /// Donor MINLP optimum in its variable space — re-linearized against the
  /// new model (valid by convexity even when the fits moved).
  std::vector<double> x;
  /// Donor cut pool — applied only when `fit_params` equals the new
  /// instance's flattened fit parameters (the validity condition for
  /// reusing OA cuts verbatim).
  std::vector<minlp::Cut> cuts;
  std::vector<double> fit_params;

  bool empty() const {
    return nodes_by_task.empty() && x.empty() && cuts.empty();
  }
};

struct PipelineOptions {
  /// Gather: node counts per fragment (geometric between 1 and the
  /// per-fragment probe ceiling) and repeated measurements per count.
  std::size_t fit_points = 5;
  std::size_t repetitions = 1;
  /// Noise applied to gather probes (benchmark runs are noisy too).
  double bench_noise_cv = 0.03;
  std::uint64_t seed = 42;

  Objective objective = Objective::MinMax;
  perf::FitOptions fit;

  /// Route the Solve step through the general MINLP branch-and-bound
  /// (build_budget_minlp + minlp::solve) instead of the exact greedy —
  /// the paper's §III-E solver path, and the one `bnb.solver_threads`
  /// parallelizes. Requires objective != MaxMin (no MINLP encoding).
  bool solve_with_minlp = false;
  minlp::BnbOptions bnb;

  /// Cross-instance warm seed for the Solve step (MINLP path only; ignored
  /// by the greedy solver). Seeding never changes the optimum — an
  /// infeasible incumbent is rejected by the B&B audit and stale cuts are
  /// excluded by the fit-params equality check — it only prunes the tree.
  SolveSeed solve_seed;

  /// Number of representative SCF dimers probed during Gather (spread over
  /// the combined-size range); models for the remaining dimers are scaled
  /// from the nearest probed size. 0 disables dimer probing (the dimer
  /// phase then falls back to size-proxy ECT on the monomer groups).
  std::size_t dimer_probe_count = 8;

  /// Solve with machine-derived cost terms: when the run machine models
  /// link bandwidth or node memory (sim::Machine), each fragment's fitted
  /// compute model is extended with pinned comm (halo volume times SCF
  /// neighbour count over link bandwidth) and memory (working set against
  /// node capacity) terms before the Solve step. False = the paper's
  /// compute-only model, even on machines that charge for communication
  /// and paging at execution time.
  bool machine_cost_terms = true;

  /// Execution options (shared by the HSLB run and the DLB baseline).
  RunOptions run;
  /// DLB baseline group count; 0 means one group per fragment.
  std::size_t dlb_groups = 0;

  /// Worker threads for the Gather and Fit stages (0 = hardware
  /// concurrency). Allocations are identical for every thread count:
  /// probe noise is derived per (fragment, node count, repetition).
  std::size_t threads = 1;

  /// Closed-loop rebalancing (hslb::Controller): when `rebalance.adaptive`
  /// is set, the Execute step runs epoch by epoch (one SCC iteration per
  /// epoch, then the dimer phase) and the monitor -> refit -> warm
  /// re-solve -> migrate loop reacts to stragglers, cost drift and node
  /// failures. Off (the default), or on but never triggered, the run is
  /// bit-identical to the static pipeline.
  RebalancePolicy rebalance;
};

struct PipelineResult {
  perf::BenchTable bench;  ///< Gather output (monomer probes)
  std::vector<std::pair<std::string, perf::FitResult>> fits;
  Allocation allocation;   ///< Solve output: nodes per fragment

  /// Predicted models for every SCF dimer (from the probed subset), used
  /// by the Execute step's dimer-wave re-partition.
  DimerPredictions dimer_predictions;
  double dimer_min_r2 = 1.0;  ///< fit quality over the probed dimers

  /// Predicted SCC-loop seconds (the phase the allocation optimizes):
  /// scc_iterations * (predicted wave + sync overhead).
  double predicted_scc_seconds = 0.0;

  ExecutionResult hslb;  ///< Execute under the static allocation
  ExecutionResult dlb;   ///< stock dynamic baseline

  /// Fit-quality summary over fragments.
  double min_r2 = 0.0;
  double mean_r2 = 0.0;

  /// Per-stage instrumentation from the hslb::Pipeline engine (stage wall
  /// times, per-fragment R², solver stats, predicted-vs-actual SCC).
  /// Adaptive runs also fill report.epochs/rebalances/migration_seconds.
  PipelineReport report;

  /// Solver diagnostics of every warm re-solve the closed-loop controller
  /// ran (empty for static runs and for adaptive runs that never tripped).
  std::vector<SolverStats> resolve_stats;

  /// What the Solve step learned, exported for seeding a later run
  /// (PipelineOptions::solve_seed). Empty on the greedy path.
  SolveSeed solve_export;
  /// True when options.solve_seed's incumbent passed the B&B feasibility
  /// audit and the search actually started warm (minlp path only).
  bool seed_accepted = false;
};

/// Runs the full pipeline on `nodes` nodes via the shared hslb::Pipeline
/// engine. Requires nodes >= #fragments (HSLB gives every fragment at
/// least one node).
PipelineResult run_pipeline(const System& sys, const CostModel& cost,
                            long long nodes, const PipelineOptions& options = {});

/// The FMO substrate as a self-contained hslb::Application (by value: the
/// returned application owns copies of its inputs), for registry-driven
/// pipelines. Also implements hslb::BaselineReporter (HSLB vs DLB totals).
/// A run through the shared engine with equal options produces results
/// bit-identical to run_pipeline.
std::shared_ptr<Application> make_application(System sys, CostModel cost,
                                              long long nodes,
                                              PipelineOptions options = {});

/// The Solve step in isolation: budget tasks from fitted models.
/// Probe ceiling / model validity range is [1, max_nodes_per_fragment].
std::vector<BudgetTask> make_budget_tasks(
    const System& sys,
    const std::vector<std::pair<std::string, perf::FitResult>>& fits,
    long long max_nodes_per_fragment);

/// Per-fragment probe ceiling used by Gather (also the per-fragment upper
/// bound in the Solve step, so predictions interpolate rather than
/// extrapolate, as §III-C recommends).
long long probe_ceiling(const System& sys, long long nodes);

}  // namespace hslb::fmo
