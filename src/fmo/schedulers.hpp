// FMO execution schedulers: the dynamic-load-balancing baseline (stock
// GAMESS/GDDI behaviour) and the HSLB static schedule.
//
// Both simulate a full FMO2 run:
//   1. the monomer SCC loop — `scc_iterations` rounds; in each round every
//      fragment's monomer SCF must complete, followed by a global
//      synchronization (charge exchange);
//   2. one dimer phase — all SCF dimers plus the aggregated ES dimers.
//
// DLB: equal-size groups pull fragments from a shared counter (largest
// first), exactly the regime where "the number of tasks is much smaller
// than the number of processors" defeats dynamic balancing (§I).
//
// HSLB: one group per fragment, sized by the min-max MINLP solution; every
// SCC round is a single concurrent wave. For the dimer phase the machine
// is re-partitioned (GDDI allows re-splitting groups between phases): when
// predicted dimer models are available and the dimers fit, a second
// min-max allocation runs all SCF dimers as one concurrent wave; otherwise
// dimers are statically assigned to the monomer groups by predicted
// earliest completion time.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "fmo/cost.hpp"
#include "fmo/energy.hpp"
#include "fmo/fragment.hpp"
#include "fmo/gddi.hpp"
#include "hslb/allocation.hpp"
#include "perf/fit.hpp"
#include "perf/model.hpp"
#include "sim/machine.hpp"
#include "sim/trace.hpp"

namespace hslb::fmo {

struct RunOptions {
  int scc_iterations = 10;
  /// Per-iteration global synchronization / charge-exchange overhead (s).
  double sync_overhead = 0.05;
  /// Coefficient of variation of per-task execution noise. Draws are keyed
  /// by (seed, phase, task, attempt) so they are invariant to scheduling
  /// order and shared between HSLB and DLB runs of the same system.
  double noise_cv = 0.02;
  std::uint64_t seed = 7;

  /// Machine the run is placed on. A zero-node machine (the default) means
  /// "derive an Intrepid-like partition exactly covering the layout".
  sim::Machine machine;
  /// Coefficient of variation of per-node straggler slowdown factors
  /// (>= 1, keyed off `seed`); 0 disables stragglers.
  double straggler_cv = 0.0;
  /// Fail-stop injection: `fail_node` (-1 = none) goes down at `fail_time`
  /// for `fail_downtime` seconds (infinity = permanent).
  long long fail_node = -1;
  double fail_time = 0.0;
  double fail_downtime = std::numeric_limits<double>::infinity();

  /// Mid-run cost drift: per-fragment multipliers (size = #fragments)
  /// applied to the true monomer cost from SCC iteration `drift_onset`
  /// onwards; empty = no drift. Every scheduler (static HSLB, DLB, the
  /// adaptive epoch runner) sees the same drifted truth, so adaptive gains
  /// come from reacting, not from a different workload.
  std::vector<double> task_scale;
  int drift_onset = 0;
};

struct ExecutionResult {
  double total_seconds = 0.0;
  double scc_seconds = 0.0;    ///< monomer loop including syncs
  double dimer_seconds = 0.0;  ///< dimer phase including ES contribution
  int scc_iterations = 0;

  /// Busy seconds of each *monomer-phase* group (work time only).
  std::vector<double> group_busy;
  /// Node count of each monomer-phase group.
  std::vector<long long> group_nodes;
  /// Busy node-seconds over the whole run (both phases).
  double busy_node_seconds = 0.0;

  /// FMO2 energy assembled *during execution* (monomer terms on the final
  /// SCC iteration, dimer corrections as each dimer completes, ES tail at
  /// the end). Load balancing must not change the chemistry: both
  /// schedulers report the same energy as the pure fmo2_energy() reference
  /// (up to floating-point summation order).
  EnergyBreakdown energy;

  /// Per-attempt execution trace over both phases. Synchronization events
  /// and the analytic ES-dimer tail appear in the trace but are excluded
  /// from group_busy / busy_node_seconds (they are overhead, not work).
  sim::Trace trace;
  /// False when a permanent node failure left work that could never run.
  bool completed = true;
  /// Attempts aborted by the fail-stop and re-run.
  std::size_t restarts = 0;

  /// Communication / paging charges the machine levied over the whole run
  /// (zero on machines that model neither — the compute-only regime).
  double comm_seconds = 0.0;
  double page_seconds = 0.0;
  /// Monomer (SCC-phase) task-seconds including those charges: the actual
  /// the fitted per-fragment models predict, term-attributed in the
  /// pipeline report.
  double monomer_task_seconds = 0.0;

  /// Node-weighted parallel efficiency: busy node-seconds over
  /// total-node-seconds of the whole run.
  double efficiency(long long total_nodes) const;

  /// Monomer-phase busy-time imbalance across groups: max/mean - 1.
  double group_imbalance() const;
};

/// Predicted performance models for the SCF dimers, parallel to
/// System::scf_dimers. Produced by the pipeline's dimer probing; an empty
/// `models` vector disables the dimer-wave re-partition.
struct DimerPredictions {
  std::vector<perf::Model> models;
};

/// Stock dynamic load balancing over `layout` equal (or given) groups.
ExecutionResult run_dlb(const System& sys, const CostModel& cost,
                        const GroupLayout& layout, const RunOptions& options);

/// HSLB static execution on `total_nodes` nodes: `allocation` must contain
/// one entry per fragment (task names = fragment names) giving its group's
/// node count. `dimers` optionally carries predicted dimer models (see
/// DimerPredictions).
ExecutionResult run_hslb(const System& sys, const CostModel& cost,
                         const Allocation& allocation, long long total_nodes,
                         const DimerPredictions& dimers,
                         const RunOptions& options);

/// Convenience overload without dimer predictions (ECT fallback policy).
ExecutionResult run_hslb(const System& sys, const CostModel& cost,
                         const Allocation& allocation, long long total_nodes,
                         const RunOptions& options);

/// Epoch-by-epoch HSLB execution for the closed-loop controller: each
/// step() runs one SCC iteration (one concurrent wave + its sync barrier),
/// and the final step runs the dimer phase plus the ES tail. Each epoch is
/// a fresh sim::Runtime whose node clocks start at the previous barrier's
/// end, so a run that never rebalances reproduces run_hslb's schedule —
/// trace, accounting and energy — bit-identically (noise draws are keyed
/// by (phase, task, attempt), which the epoch split preserves).
///
/// On a permanent node failure the epoch pauses (failure = true): the
/// caller re-solves over budget() — the largest contiguous surviving node
/// segment — installs the new allocation (install), charges the stall
/// (migrate), and the next step() re-runs only the work the failure left
/// unfinished, with barriers packed inside the surviving segment.
class EpochRunner {
 public:
  /// What one epoch reported (mirrors hslb::EpochOutcome).
  struct EpochReport {
    bool done = false;     ///< the run (incl. dimer phase) is finished
    bool failure = false;  ///< a permanent failure paused this epoch
    double epoch_seconds = 0.0;  ///< run-clock time this epoch consumed
    double imbalance = 0.0;      ///< fragment busy imbalance (max/mean - 1)
    double epochs_remaining = 0.0;
    /// Observed monomer compute seconds, machine charges excluded:
    /// (fragment name, nodes, seconds); the epoch stamp is left to the
    /// controller.
    std::vector<perf::Observed> observations;
  };

  EpochRunner(const System& sys, const CostModel& cost, long long total_nodes,
              const DimerPredictions& dimers, const RunOptions& options);
  ~EpochRunner();

  /// Installs `allocation` (one entry per fragment) for subsequent epochs:
  /// fragment groups occupy contiguous blocks in fragment order from the
  /// surviving segment's start. Must be called once before the first
  /// step() and after every accepted rebalance.
  void install(const Allocation& allocation);

  /// Runs the next epoch (or re-runs what a failure left unfinished).
  EpochReport step();

  /// Charges a mid-run migration of `volume_gb` to the run clock
  /// (sim::Machine::migration_seconds) and records a fixed "migrate" trace
  /// event over the surviving segment. Returns the stall in seconds.
  double migrate(double volume_gb);

  /// Data volume (GB) a switch to `next` would move: the working set of
  /// every fragment whose absolute node block would change (memory_gb, or
  /// an nbf^2 density-matrix estimate when the fragment models no memory).
  double migration_volume(const Allocation& next) const;

  /// Nodes currently available for allocation: the run's node budget,
  /// clipped to the largest contiguous segment a permanent failure left.
  long long budget() const;

  const sim::Machine& machine() const;

  /// Finalizes accounting and returns the accumulated execution result
  /// (same shape run_hslb returns). Call once, after step() reported done.
  ExecutionResult finish();

 private:
  struct Impl;
  Impl* impl_;
};

}  // namespace hslb::fmo
