#include "fmo/cost.hpp"

#include <cmath>

#include "common/contracts.hpp"

namespace hslb::fmo {

CostModel::CostModel(CostModelOptions options) : opt_(options) {
  HSLB_EXPECTS(opt_.seconds_per_nbf3 > 0.0);
  HSLB_EXPECTS(opt_.parallel_fraction > 0.0 && opt_.parallel_fraction <= 1.0);
  HSLB_EXPECTS(opt_.serial_fraction >= 0.0);
  HSLB_EXPECTS(opt_.parallel_fraction + opt_.serial_fraction <= 1.0 + 1e-12);
  HSLB_EXPECTS(opt_.comm_per_nbf2 >= 0.0);
  HSLB_EXPECTS(opt_.comm_exponent >= 1.0);  // keep the true model convex
  HSLB_EXPECTS(opt_.dimer_work_factor > 0.0);
}

perf::Model CostModel::from_work(double single_node_seconds, double nbf) const {
  perf::Model m;
  m.a = opt_.parallel_fraction * single_node_seconds;
  m.d = opt_.serial_fraction * single_node_seconds;
  m.b = opt_.comm_per_nbf2 * nbf * nbf;
  m.c = opt_.comm_exponent;
  return m;
}

perf::Model CostModel::monomer(const Fragment& f) const {
  HSLB_EXPECTS(f.basis_functions > 0);
  const double nbf = static_cast<double>(f.basis_functions);
  return from_work(opt_.seconds_per_nbf3 * nbf * nbf * nbf, nbf);
}

perf::Model CostModel::dimer(const Fragment& i, const Fragment& j) const {
  HSLB_EXPECTS(i.basis_functions > 0 && j.basis_functions > 0);
  const double nbf =
      static_cast<double>(i.basis_functions + j.basis_functions);
  return from_work(opt_.dimer_work_factor * opt_.seconds_per_nbf3 * nbf * nbf * nbf,
                   nbf);
}

double CostModel::es_dimer_time(const System& sys, long long nodes) const {
  HSLB_EXPECTS(nodes >= 1);
  return opt_.es_dimer_seconds * static_cast<double>(sys.es_dimers) /
         static_cast<double>(nodes);
}

}  // namespace hslb::fmo
