// GDDI-style processor-group layouts.
//
// GAMESS's Generalized Distributed Data Interface (GDDI) splits the machine
// into groups; each fragment calculation runs within one group. The stock
// scheme uses equal-size groups with dynamic assignment; HSLB instead sizes
// groups per fragment.
#pragma once

#include <cstddef>
#include <vector>

namespace hslb::fmo {

struct GroupLayout {
  /// Node count of each group, in group order.
  std::vector<long long> sizes;

  long long total_nodes() const;
  std::size_t num_groups() const { return sizes.size(); }

  /// Equal split of `nodes` into `groups` groups (remainder spread over the
  /// first groups), the stock GDDI/DLB configuration.
  static GroupLayout uniform(long long nodes, std::size_t groups);
};

}  // namespace hslb::fmo
