// FMO scenario factory: the one place FMO systems and perturbation
// scenarios are constructed.
//
// Two layers live here:
//
//  * make_system(variant, ...) — the named molecular-system variants the
//    CLI, the registry, and the service all build from ("water",
//    "peptide", "comm"); hoisted out of src/cli/commands.cpp so every
//    entry point constructs byte-identical systems.
//  * scenario:: — the shared robustness scenario the perturbation benches
//    (execution_robustness, adaptive_rebalance) stress: one water
//    cluster, one node budget, one straggler ladder, one fail-stop
//    injection. Keeping the construction in one place guarantees the
//    static-vs-DLB bench and the closed-loop bench stress the *same*
//    world, so their headline numbers in BENCH_solver.json are directly
//    comparable.
#pragma once

#include <string>
#include <vector>

#include "common/strings.hpp"
#include "fmo/cost.hpp"
#include "fmo/molecule.hpp"
#include "fmo/schedulers.hpp"
#include "hslb/budget.hpp"

namespace hslb::fmo {

/// Named system variants: "water" (default; merged water cluster, SCF
/// dimers within 4.5 Å), "peptide" (polypeptide chain, 6.0 Å cutoff),
/// "comm" (communication-dominated cluster with halo/memory footprints).
/// `fragments` is residues for the peptide variant. Throws
/// std::invalid_argument on an unknown variant.
System make_system(const std::string& variant, std::size_t fragments,
                   std::uint64_t seed = 3);

/// The variant names make_system accepts, in display order.
std::vector<std::string> system_variants();

namespace scenario {

constexpr long long kNodes = 192;
constexpr std::size_t kDlbGroups = 24;
constexpr long long kFailNode = 0;
constexpr double kFailTime = 1.0;  // seconds; downtime stays infinite

/// The benchmark system: 24 merged water fragments, SCF dimers within
/// 4.5 Å. Large enough that the min-max allocation is non-trivial on 192
/// nodes, small enough that a full severity sweep stays in CI budget.
inline System water24() {
  return water_cluster({.fragments = 24,
                        .merge_fraction = 0.5,
                        .scf_cutoff_angstrom = 4.5,
                        .seed = 30});
}

/// Straggler severities swept by both benches (cv of the per-node
/// max(1, lognormal) slowdown factors).
inline std::vector<double> straggler_severities() {
  return {0.0, 0.05, 0.1, 0.2, 0.4};
}

inline std::string cv_label(double cv) { return strings::format("%g", cv); }

/// Noise-free execution baseline: isolates the injected perturbation
/// (stragglers, fail-stop, drift) from run-to-run task noise.
inline RunOptions noise_free_run() {
  RunOptions base;
  base.noise_cv = 0.0;
  base.seed = 17;
  return base;
}

/// Permanent fail-stop of node 0 early in the SCC loop.
inline void inject_fail_stop(RunOptions& opt) {
  opt.fail_node = kFailNode;
  opt.fail_time = kFailTime;
}

/// Budget tasks from the true (oracle) monomer costs — no gather noise —
/// for benches that run the Solve step directly.
inline std::vector<BudgetTask> oracle_tasks(const System& sys,
                                            const CostModel& cost) {
  std::vector<BudgetTask> tasks;
  tasks.reserve(sys.fragments.size());
  for (const auto& f : sys.fragments)
    tasks.push_back(BudgetTask{f.name, cost.monomer(f), 1, kNodes});
  return tasks;
}

/// The DLB baseline's group layout: 24 uniform groups over the budget.
inline GroupLayout dlb_layout() {
  return GroupLayout::uniform(kNodes, kDlbGroups);
}

}  // namespace scenario
}  // namespace hslb::fmo
