#include "fmo/fragment.hpp"

#include <algorithm>

#include "common/contracts.hpp"

namespace hslb::fmo {

long long System::total_basis_functions() const {
  long long total = 0;
  for (const auto& f : fragments) total += f.basis_functions;
  return total;
}

std::vector<std::size_t> System::scf_neighbor_counts() const {
  std::vector<std::size_t> counts(fragments.size(), 0);
  for (const auto& d : scf_dimers) {
    HSLB_EXPECTS(d.i < counts.size() && d.j < counts.size());
    ++counts[d.i];
    ++counts[d.j];
  }
  return counts;
}

double System::size_diversity() const {
  HSLB_EXPECTS(!fragments.empty());
  int lo = fragments.front().basis_functions;
  int hi = lo;
  for (const auto& f : fragments) {
    lo = std::min(lo, f.basis_functions);
    hi = std::max(hi, f.basis_functions);
  }
  HSLB_EXPECTS(lo > 0);
  return static_cast<double>(hi) / static_cast<double>(lo);
}

}  // namespace hslb::fmo
