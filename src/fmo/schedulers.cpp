#include "fmo/schedulers.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <string>
#include <utility>

#include "common/contracts.hpp"
#include "common/stats.hpp"
#include "hslb/budget.hpp"
#include "sim/runtime.hpp"

namespace hslb::fmo {

namespace {

/// Tasks (by fragment or dimer index) in descending work order — the shared
/// counter in GAMESS hands out big fragments first.
template <typename SizeOf>
std::vector<std::size_t> descending_order(std::size_t count, SizeOf&& size_of) {
  std::vector<std::size_t> order(count);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return size_of(a) > size_of(b);
  });
  return order;
}

/// Combined dimer size key (basis functions).
double dimer_nbf(const System& sys, std::size_t d) {
  return static_cast<double>(sys.fragments[sys.scf_dimers[d].i].basis_functions +
                             sys.fragments[sys.scf_dimers[d].j].basis_functions);
}

/// Trace/noise label for an SCF dimer: both fragment names.
std::string dimer_name(const System& sys, std::size_t d) {
  return sys.fragments[sys.scf_dimers[d].i].name + "+" +
         sys.fragments[sys.scf_dimers[d].j].name;
}

/// The machine the run executes on: either the one the caller provided
/// (must cover the layout) or an Intrepid-like partition derived from it.
sim::Machine run_machine(const RunOptions& options, long long total_nodes) {
  HSLB_EXPECTS(total_nodes >= 1);
  if (options.machine.nodes == 0)
    return sim::Machine{"intrepid", static_cast<std::size_t>(total_nodes), 4};
  HSLB_EXPECTS(options.machine.nodes >=
               static_cast<std::size_t>(total_nodes));
  return options.machine;
}

sim::Perturbation make_perturbation(const RunOptions& options,
                                    std::size_t machine_nodes) {
  sim::Perturbation p;
  p.noise_cv = options.noise_cv;
  p.seed = options.seed;
  if (options.straggler_cv > 0.0)
    p.node_slowdown = sim::Perturbation::stragglers(
        machine_nodes, options.straggler_cv, options.seed);
  p.fail_node = options.fail_node;
  p.fail_time = options.fail_time;
  p.fail_downtime = options.fail_downtime;
  return p;
}

/// Records a fixed full-machine overhead event (sync barrier, ES tail).
void add_overhead(sim::Trace& trace, const std::string& name,
                  const std::string& phase, double start, double seconds) {
  trace.events.push_back(
      {name, phase, 0, trace.nodes, start, start + seconds, false});
}

/// Truth multiplier of fragment `f`'s monomer cost at SCC iteration `iter`
/// (RunOptions::task_scale drift injection; 1.0 outside the drift regime).
double drift_scale(const RunOptions& options, std::size_t f, int iter) {
  if (options.task_scale.empty() || iter < options.drift_onset) return 1.0;
  HSLB_ASSERT(f < options.task_scale.size());
  return options.task_scale[f];
}

}  // namespace

double ExecutionResult::efficiency(long long total_nodes) const {
  HSLB_EXPECTS(total_nodes >= 1);
  if (total_seconds <= 0.0) return 1.0;
  return busy_node_seconds / (static_cast<double>(total_nodes) * total_seconds);
}

double ExecutionResult::group_imbalance() const {
  if (group_busy.empty()) return 0.0;
  return stats::imbalance(group_busy);
}

ExecutionResult run_dlb(const System& sys, const CostModel& cost,
                        const GroupLayout& layout, const RunOptions& options) {
  HSLB_EXPECTS(!sys.fragments.empty());
  HSLB_EXPECTS(layout.num_groups() >= 1);
  HSLB_EXPECTS(options.scc_iterations >= 1);
  const sim::Machine machine = run_machine(options, layout.total_nodes());
  const sim::Perturbation perturb = make_perturbation(options, machine.nodes);

  ExecutionResult out;
  out.scc_iterations = options.scc_iterations;
  out.group_busy.assign(layout.num_groups(), 0.0);
  out.group_nodes = layout.sizes;
  out.trace.machine = machine.name;
  out.trace.nodes = machine.nodes;
  out.trace.cores_per_node = machine.cores_per_node;

  // Groups occupy contiguous node blocks in layout order from node 0.
  std::vector<sim::NodeSet> groups;
  groups.reserve(layout.num_groups());
  std::size_t offset = 0;
  for (long long size : layout.sizes) {
    groups.push_back({offset, static_cast<std::size_t>(size)});
    offset += static_cast<std::size_t>(size);
  }

  // Monomer models are reused every SCC iteration.
  std::vector<perf::Model> monomers;
  monomers.reserve(sys.fragments.size());
  for (const auto& f : sys.fragments) monomers.push_back(cost.monomer(f));
  const auto monomer_order = descending_order(
      sys.fragments.size(),
      [&](std::size_t i) { return sys.fragments[i].basis_functions; });
  // Per-fragment demand: one replicated halo per SCF neighbour, plus the
  // fragment's working set (both zero outside the comm scenario family).
  const auto pairs = sys.scf_neighbor_counts();

  // Drains one queue phase on the machine clock and folds the result into
  // the accumulators; returns the phase-end time (= queue makespan).
  auto drain = [&](const std::vector<sim::Runtime::QueueTask>& queue,
                   double clock, bool monomer_phase) {
    const auto res =
        sim::Runtime::run_queue(machine, groups, queue, perturb, clock);
    out.trace.append(res.trace);
    out.restarts += res.restarts;
    if (!res.completed) out.completed = false;
    out.comm_seconds += res.comm_seconds;
    out.page_seconds += res.page_seconds;
    for (std::size_t g = 0; g < groups.size(); ++g) {
      out.group_busy[g] += res.group_busy[g];
      out.busy_node_seconds +=
          res.group_busy[g] * static_cast<double>(layout.sizes[g]);
      if (monomer_phase) out.monomer_task_seconds += res.group_busy[g];
    }
    return res.makespan;
  };

  double clock = 0.0;
  for (int iter = 0; iter < options.scc_iterations; ++iter) {
    const std::string phase = "scc" + std::to_string(iter);
    std::vector<sim::Runtime::QueueTask> queue;
    queue.reserve(monomer_order.size());
    for (std::size_t f : monomer_order) {
      const perf::Model model = monomers[f];
      const double scale = drift_scale(options, f, iter);
      queue.push_back(
          {sys.fragments[f].name,
           [model, scale](long long n) {
             return model.eval(static_cast<double>(n)) * scale;
           },
           phase,
           sys.fragments[f].halo_gb * static_cast<double>(pairs[f]),
           sys.fragments[f].memory_gb});
    }
    const double end = drain(queue, clock, true);
    out.scc_seconds += (end - clock) + options.sync_overhead;
    add_overhead(out.trace, "sync", phase, end, options.sync_overhead);
    clock = end + options.sync_overhead;
    if (iter + 1 == options.scc_iterations) {
      // Converged densities: record the monomer energies in pull order.
      for (std::size_t f : monomer_order)
        out.energy.monomer += monomer_energy(sys.fragments[f]);
    }
  }

  // Dimer phase.
  std::vector<perf::Model> dimers;
  dimers.reserve(sys.scf_dimers.size());
  for (const auto& d : sys.scf_dimers)
    dimers.push_back(cost.dimer(sys.fragments[d.i], sys.fragments[d.j]));
  const auto dimer_order = descending_order(
      dimers.size(), [&](std::size_t i) { return dimer_nbf(sys, i); });
  if (!dimers.empty()) {
    std::vector<sim::Runtime::QueueTask> queue;
    queue.reserve(dimer_order.size());
    for (std::size_t i : dimer_order) {
      const perf::Model model = dimers[i];
      queue.push_back(
          {dimer_name(sys, i),
           [model](long long n) { return model.eval(static_cast<double>(n)); },
           "dimer"});
    }
    const double end = drain(queue, clock, false);
    out.dimer_seconds = end - clock;
    clock = end;
    for (std::size_t i : dimer_order) {
      const auto& d = sys.scf_dimers[i];
      out.energy.scf_dimer += scf_dimer_correction(
          sys.fragments[d.i], sys.fragments[d.j], d.separation);
    }
  }
  const double es = cost.es_dimer_time(sys, layout.total_nodes());
  out.dimer_seconds += es;
  add_overhead(out.trace, "es-dimers", "dimer", clock, es);
  out.energy.es_dimer = fmo2_energy(sys).es_dimer;

  out.total_seconds = out.scc_seconds + out.dimer_seconds;
  return out;
}

ExecutionResult run_hslb(const System& sys, const CostModel& cost,
                         const Allocation& allocation, long long total_nodes,
                         const DimerPredictions& dimers,
                         const RunOptions& options) {
  HSLB_EXPECTS(!sys.fragments.empty());
  HSLB_EXPECTS(allocation.tasks.size() == sys.fragments.size());
  HSLB_EXPECTS(options.scc_iterations >= 1);
  HSLB_EXPECTS(total_nodes >= allocation.total_nodes());
  HSLB_EXPECTS(dimers.models.empty() ||
               dimers.models.size() == sys.scf_dimers.size());
  const sim::Machine machine = run_machine(options, total_nodes);
  const sim::Perturbation perturb = make_perturbation(options, machine.nodes);

  ExecutionResult out;
  out.scc_iterations = options.scc_iterations;
  out.group_busy.assign(sys.fragments.size(), 0.0);
  out.group_nodes.resize(sys.fragments.size());

  std::vector<perf::Model> monomers;
  monomers.reserve(sys.fragments.size());
  for (std::size_t f = 0; f < sys.fragments.size(); ++f) {
    monomers.push_back(cost.monomer(sys.fragments[f]));
    const auto& entry = allocation.find(sys.fragments[f].name);
    HSLB_EXPECTS(entry.nodes >= 1);
    out.group_nodes[f] = entry.nodes;
  }

  // Fragment groups occupy contiguous node blocks in fragment order.
  std::vector<sim::NodeSet> frag_nodes(sys.fragments.size());
  std::size_t offset = 0;
  for (std::size_t f = 0; f < sys.fragments.size(); ++f) {
    frag_nodes[f] = {offset, static_cast<std::size_t>(out.group_nodes[f])};
    offset += static_cast<std::size_t>(out.group_nodes[f]);
  }

  sim::Runtime rt(machine);
  const sim::NodeSet all{0, machine.nodes};
  constexpr std::size_t kNone = static_cast<std::size_t>(-1);
  const auto pairs = sys.scf_neighbor_counts();

  // SCC loop: one concurrent wave of fragment tasks per iteration, closed
  // by a full-machine synchronization barrier (charge exchange).
  std::vector<std::pair<std::size_t, std::size_t>> monomer_ids;  // (task, f)
  std::size_t last_sync = kNone;
  for (int iter = 0; iter < options.scc_iterations; ++iter) {
    const std::string phase = "scc" + std::to_string(iter);
    std::vector<std::size_t> wave;
    wave.reserve(sys.fragments.size());
    for (std::size_t f = 0; f < sys.fragments.size(); ++f) {
      std::vector<std::size_t> deps;
      if (last_sync != kNone) deps.push_back(last_sync);
      const std::size_t id = rt.add_task(
          sys.fragments[f].name,
          monomers[f].eval(static_cast<double>(out.group_nodes[f])) *
              drift_scale(options, f, iter),
          frag_nodes[f], std::move(deps), phase, false,
          {sys.fragments[f].halo_gb * static_cast<double>(pairs[f]),
           sys.fragments[f].memory_gb});
      monomer_ids.emplace_back(id, f);
      wave.push_back(id);
    }
    last_sync = rt.add_task("sync", options.sync_overhead, all,
                            std::move(wave), phase, true);
    if (iter + 1 == options.scc_iterations) {
      for (std::size_t f = 0; f < sys.fragments.size(); ++f)
        out.energy.monomer += monomer_energy(sys.fragments[f]);
    }
  }

  // Dimer phase.
  std::vector<std::pair<std::size_t, long long>> wave_dimer_ids;  // (task, n)
  std::vector<std::pair<std::size_t, std::size_t>> ect_dimer_ids;  // (task, g)
  std::vector<std::size_t> dimer_ids;
  if (!sys.scf_dimers.empty()) {
    const bool can_repartition =
        !dimers.models.empty() &&
        static_cast<long long>(sys.scf_dimers.size()) <= total_nodes;
    if (can_repartition) {
      // GDDI re-split: a fresh min-max allocation runs every SCF dimer as
      // one concurrent wave, sized by the *predicted* dimer models (the
      // greedy caps each group at the predicted argmin, so communication
      // growth is respected). Dimer groups occupy contiguous blocks in
      // dimer-index order.
      std::vector<BudgetTask> tasks;
      tasks.reserve(sys.scf_dimers.size());
      for (std::size_t d = 0; d < sys.scf_dimers.size(); ++d) {
        tasks.push_back(BudgetTask{"d" + std::to_string(d), dimers.models[d],
                                   1, total_nodes});
      }
      const auto wave_alloc = solve_min_max(tasks, total_nodes);
      std::size_t dimer_offset = 0;
      for (std::size_t d = 0; d < sys.scf_dimers.size(); ++d) {
        const auto& pair = sys.scf_dimers[d];
        const auto model =
            cost.dimer(sys.fragments[pair.i], sys.fragments[pair.j]);
        const long long n = wave_alloc.tasks[d].nodes;
        const std::size_t id = rt.add_task(
            dimer_name(sys, d), model.eval(static_cast<double>(n)),
            {dimer_offset, static_cast<std::size_t>(n)}, {last_sync}, "dimer",
            false);
        dimer_offset += static_cast<std::size_t>(n);
        wave_dimer_ids.emplace_back(id, n);
        dimer_ids.push_back(id);
        out.energy.scf_dimer += scf_dimer_correction(
            sys.fragments[pair.i], sys.fragments[pair.j], pair.separation);
      }
    } else {
      // Static earliest-completion-time assignment onto the monomer groups,
      // longest dimer first, using predicted times when available and the
      // (nbf^3 / nodes) size proxy otherwise. Each group's dimers form a
      // chain after the last synchronization.
      const auto order = descending_order(
          sys.scf_dimers.size(), [&](std::size_t i) { return dimer_nbf(sys, i); });
      const std::size_t groups = out.group_nodes.size();
      std::vector<double> pred_finish(groups, 0.0);
      std::vector<std::size_t> tail(groups, kNone);
      for (std::size_t i : order) {
        const auto& d = sys.scf_dimers[i];
        // Static choice: group with the earliest predicted completion.
        std::size_t best = 0;
        double best_eta = std::numeric_limits<double>::infinity();
        for (std::size_t g = 0; g < groups; ++g) {
          const double ng = static_cast<double>(out.group_nodes[g]);
          const double pred =
              dimers.models.empty()
                  ? dimer_nbf(sys, i) * dimer_nbf(sys, i) * dimer_nbf(sys, i) / ng
                  : dimers.models[i].eval(ng);
          const double eta = pred_finish[g] + pred;
          if (eta < best_eta) {
            best_eta = eta;
            best = g;
          }
        }
        pred_finish[best] = best_eta;
        const auto model = cost.dimer(sys.fragments[d.i], sys.fragments[d.j]);
        const std::size_t prev = tail[best] == kNone ? last_sync : tail[best];
        const std::size_t id = rt.add_task(
            dimer_name(sys, i),
            model.eval(static_cast<double>(out.group_nodes[best])),
            frag_nodes[best], {prev}, "dimer", false);
        tail[best] = id;
        ect_dimer_ids.emplace_back(id, best);
        dimer_ids.push_back(id);
        out.energy.scf_dimer += scf_dimer_correction(
            sys.fragments[d.i], sys.fragments[d.j], d.separation);
      }
    }
  }
  // Aggregated ES dimers: an analytic full-machine tail after every SCF
  // dimer (fixed: no noise, no stragglers).
  const double es = cost.es_dimer_time(sys, total_nodes);
  const std::size_t es_id =
      rt.add_task("es-dimers", es, all,
                  dimer_ids.empty() ? std::vector<std::size_t>{last_sync}
                                    : dimer_ids,
                  "dimer", true);
  out.energy.es_dimer = fmo2_energy(sys).es_dimer;

  const auto rr = rt.run(perturb);
  out.trace = rr.trace;
  out.completed = rr.completed;
  out.restarts = rr.restarts;
  out.comm_seconds = rr.comm_seconds;
  out.page_seconds = rr.page_seconds;

  // Reconstruct the work accounting from the placements; sync barriers and
  // the ES tail occupy nodes but are overhead, not work. Tasks a permanent
  // failure kept from running contribute nothing.
  auto ran_for = [&](std::size_t id) {
    const auto& s = rr.tasks[id];
    return std::isfinite(s.end) ? s.end - s.start : 0.0;
  };
  for (const auto& [id, f] : monomer_ids) {
    const double t = ran_for(id);
    out.group_busy[f] += t;
    out.busy_node_seconds += t * static_cast<double>(out.group_nodes[f]);
    out.monomer_task_seconds += t;
  }
  for (const auto& [id, n] : wave_dimer_ids)
    out.busy_node_seconds += ran_for(id) * static_cast<double>(n);
  for (const auto& [id, g] : ect_dimer_ids) {
    const double t = ran_for(id);
    out.group_busy[g] += t;
    out.busy_node_seconds += t * static_cast<double>(out.group_nodes[g]);
  }

  const double scc_end = rr.tasks[last_sync].end;
  out.scc_seconds = std::isfinite(scc_end) ? scc_end : rr.makespan;
  const double run_end = rr.tasks[es_id].end;
  out.total_seconds = std::isfinite(run_end) ? run_end : rr.makespan;
  out.dimer_seconds = out.total_seconds - out.scc_seconds;
  return out;
}

ExecutionResult run_hslb(const System& sys, const CostModel& cost,
                         const Allocation& allocation, long long total_nodes,
                         const RunOptions& options) {
  return run_hslb(sys, cost, allocation, total_nodes, DimerPredictions{}, options);
}

// ---------------------------------------------------------------------------
// EpochRunner: run_hslb's DAG, executed one barrier-aligned epoch at a time.

struct EpochRunner::Impl {
  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);

  const System& sys;
  const CostModel& cost;
  const long long total_nodes;
  const DimerPredictions dimers;
  const RunOptions options;
  const sim::Machine mach;
  const sim::Perturbation perturb;

  std::vector<perf::Model> monomers;
  std::vector<std::size_t> pairs;

  // Installed layout: contiguous fragment blocks from the segment start.
  std::vector<long long> group_nodes;
  std::vector<sim::NodeSet> frag_nodes;
  bool installed = false;

  // Surviving contiguous node segment (shrinks on permanent failure).
  std::size_t seg_first = 0;
  std::size_t seg_count = 0;
  bool failed = false;

  // Progress cursors.
  int iter = 0;  ///< next (or in-flight) SCC iteration
  bool in_dimer = false;
  bool done = false;
  bool unrecoverable = false;
  std::vector<char> pending_monomers;  ///< current iteration's open wave
  std::vector<char> pending_dimers;

  double clock = 0.0;
  ExecutionResult out;
  std::vector<char> monomer_energy_added;
  std::vector<char> dimer_energy_added;

  Impl(const System& s, const CostModel& c, long long nodes,
       const DimerPredictions& d, const RunOptions& o)
      : sys(s),
        cost(c),
        total_nodes(nodes),
        dimers(d),
        options(o),
        mach(run_machine(o, nodes)),
        perturb(make_perturbation(o, mach.nodes)) {
    HSLB_EXPECTS(!sys.fragments.empty());
    HSLB_EXPECTS(options.scc_iterations >= 1);
    HSLB_EXPECTS(dimers.models.empty() ||
                 dimers.models.size() == sys.scf_dimers.size());
    HSLB_EXPECTS(options.task_scale.empty() ||
                 options.task_scale.size() == sys.fragments.size());
    seg_count = mach.nodes;
    monomers.reserve(sys.fragments.size());
    for (const auto& f : sys.fragments) monomers.push_back(cost.monomer(f));
    const auto counts = sys.scf_neighbor_counts();
    pairs.assign(counts.begin(), counts.end());
    pending_monomers.assign(sys.fragments.size(), 1);
    pending_dimers.assign(sys.scf_dimers.size(), 1);
    monomer_energy_added.assign(sys.fragments.size(), 0);
    dimer_energy_added.assign(sys.scf_dimers.size(), 0);
    out.scc_iterations = options.scc_iterations;
    out.group_busy.assign(sys.fragments.size(), 0.0);
    out.trace.machine = mach.name;
    out.trace.nodes = mach.nodes;
    out.trace.cores_per_node = mach.cores_per_node;
  }

  long long budget() const {
    return std::min<long long>(total_nodes, static_cast<long long>(seg_count));
  }

  /// Barriers span the whole machine until a failure confines the run to
  /// the surviving segment.
  sim::NodeSet barrier_set() const {
    if (failed) return {seg_first, seg_count};
    return {0, mach.nodes};
  }

  void install(const Allocation& allocation) {
    HSLB_EXPECTS(allocation.tasks.size() == sys.fragments.size());
    HSLB_EXPECTS(allocation.total_nodes() <= budget());
    group_nodes.resize(sys.fragments.size());
    frag_nodes.resize(sys.fragments.size());
    std::size_t offset = seg_first;
    for (std::size_t f = 0; f < sys.fragments.size(); ++f) {
      const auto& entry = allocation.find(sys.fragments[f].name);
      HSLB_EXPECTS(entry.nodes >= 1);
      group_nodes[f] = entry.nodes;
      frag_nodes[f] = {offset, static_cast<std::size_t>(entry.nodes)};
      offset += static_cast<std::size_t>(entry.nodes);
    }
    out.group_nodes = group_nodes;
    installed = true;
  }

  /// One epoch on a fresh runtime: every node's clock starts at the
  /// current barrier time, so the schedule continues run_hslb's exactly.
  sim::RunResult run_epoch(const sim::Runtime& rt, sim::EpochState* state) {
    sim::EpochOptions eo;
    eo.initial_node_free.assign(mach.nodes, clock);
    eo.stop_on_failure = true;
    return rt.run(perturb, eo, state);
  }

  void fold(const sim::RunResult& rr) {
    out.trace.append(rr.trace);
    out.restarts += rr.restarts;
    out.comm_seconds += rr.comm_seconds;
    out.page_seconds += rr.page_seconds;
  }

  /// Shrinks the world to the largest contiguous segment of surviving
  /// nodes and advances the clock past all in-flight work. Returns false
  /// when the survivors cannot host one node per fragment.
  bool handle_failure(const sim::EpochState& state) {
    failed = true;
    const auto fn = static_cast<std::size_t>(options.fail_node);
    const std::size_t end = seg_first + seg_count;
    HSLB_ASSERT(fn >= seg_first && fn < end);
    // Larger of the two halves either side of the failed node (ties keep
    // the low half, so layouts stay anchored at the machine front).
    const std::size_t left = fn - seg_first;
    const std::size_t right = end - fn - 1;
    if (left >= right) {
      seg_count = left;
    } else {
      seg_first = fn + 1;
      seg_count = right;
    }
    for (std::size_t n = seg_first; n < seg_first + seg_count; ++n)
      clock = std::max(clock, state.node_free[n]);
    if (budget() < static_cast<long long>(sys.fragments.size())) {
      unrecoverable = true;
      done = true;
      out.completed = false;
      return false;
    }
    return true;
  }

  EpochReport step() {
    HSLB_EXPECTS(installed);
    EpochReport r;
    if (done) {
      r.done = true;
      return r;
    }
    return in_dimer ? run_dimer_unit() : run_scc_unit();
  }

  EpochReport run_scc_unit() {
    EpochReport r;
    const double epoch_start = clock;
    sim::Runtime rt(mach);
    const std::string phase = "scc" + std::to_string(iter);
    std::vector<std::size_t> ids(sys.fragments.size(), kNone);
    std::vector<std::size_t> wave;
    for (std::size_t f = 0; f < sys.fragments.size(); ++f) {
      if (!pending_monomers[f]) continue;
      ids[f] = rt.add_task(
          sys.fragments[f].name,
          monomers[f].eval(static_cast<double>(group_nodes[f])) *
              drift_scale(options, f, iter),
          frag_nodes[f], {}, phase, false,
          {sys.fragments[f].halo_gb * static_cast<double>(pairs[f]),
           sys.fragments[f].memory_gb});
      wave.push_back(ids[f]);
      // Converged densities: the final iteration records monomer energies
      // (at build, as the static scheduler does; flags stop a re-run after
      // a failure from double-counting).
      if (iter + 1 == options.scc_iterations && !monomer_energy_added[f]) {
        out.energy.monomer += monomer_energy(sys.fragments[f]);
        monomer_energy_added[f] = 1;
      }
    }
    const std::size_t sync_id = rt.add_task(
        "sync", options.sync_overhead, barrier_set(), std::move(wave), phase,
        true);

    sim::EpochState state;
    const auto rr = run_epoch(rt, &state);
    fold(rr);

    std::vector<double> durations;
    for (std::size_t f = 0; f < sys.fragments.size(); ++f) {
      if (ids[f] == kNone || !state.ran[ids[f]]) continue;
      const auto& ts = rr.tasks[ids[f]];
      const double t = ts.end - ts.start;
      out.group_busy[f] += t;
      out.busy_node_seconds += t * static_cast<double>(group_nodes[f]);
      out.monomer_task_seconds += t;
      durations.push_back(t);
      pending_monomers[f] = 0;
    }
    for (const auto& [id, seconds] : state.observed) {
      for (std::size_t f = 0; f < sys.fragments.size(); ++f) {
        if (ids[f] != id) continue;
        r.observations.push_back({sys.fragments[f].name,
                                  static_cast<double>(group_nodes[f]), seconds,
                                  0});
        break;
      }
    }

    if (rr.failure_paused) {
      r.failure = true;
      r.done = !handle_failure(state);
      r.epochs_remaining =
          static_cast<double>(options.scc_iterations - iter) + 1.0;
      r.epoch_seconds = clock - epoch_start;
      return r;
    }

    clock = rr.tasks[sync_id].end;
    out.scc_seconds = clock;
    ++iter;
    pending_monomers.assign(sys.fragments.size(), 1);
    if (iter >= options.scc_iterations) in_dimer = true;
    r.imbalance = durations.empty() ? 0.0 : stats::imbalance(durations);
    r.epochs_remaining =
        static_cast<double>(options.scc_iterations - iter) + 1.0;
    r.epoch_seconds = clock - epoch_start;
    return r;
  }

  EpochReport run_dimer_unit() {
    EpochReport r;
    const double epoch_start = clock;
    sim::Runtime rt(mach);

    std::vector<std::size_t> active;
    for (std::size_t d = 0; d < pending_dimers.size(); ++d)
      if (pending_dimers[d]) active.push_back(d);

    std::vector<std::pair<std::size_t, std::size_t>> built;  // (id, d)
    std::vector<long long> built_nodes;   // wave path: group size per task
    std::vector<std::size_t> built_group; // ECT path: monomer group (kNone = wave)
    std::vector<std::size_t> dimer_ids;
    if (!active.empty()) {
      const bool can_repartition =
          !dimers.models.empty() &&
          static_cast<long long>(active.size()) <= budget();
      if (can_repartition) {
        // GDDI re-split: min-max wave over the pending dimers' predicted
        // models, blocks packed from the segment start.
        std::vector<BudgetTask> tasks;
        tasks.reserve(active.size());
        for (std::size_t d : active) {
          tasks.push_back(BudgetTask{"d" + std::to_string(d),
                                     dimers.models[d], 1, budget()});
        }
        const auto wave_alloc = solve_min_max(tasks, budget());
        std::size_t offset = seg_first;
        for (std::size_t k = 0; k < active.size(); ++k) {
          const std::size_t d = active[k];
          const auto& pair = sys.scf_dimers[d];
          const auto model =
              cost.dimer(sys.fragments[pair.i], sys.fragments[pair.j]);
          const long long n = wave_alloc.tasks[k].nodes;
          const std::size_t id = rt.add_task(
              dimer_name(sys, d), model.eval(static_cast<double>(n)),
              {offset, static_cast<std::size_t>(n)}, {}, "dimer", false);
          offset += static_cast<std::size_t>(n);
          built.emplace_back(id, d);
          built_nodes.push_back(n);
          built_group.push_back(kNone);
          dimer_ids.push_back(id);
        }
      } else {
        // ECT fallback onto the monomer groups, longest dimer first.
        const auto order = descending_order(active.size(), [&](std::size_t k) {
          return dimer_nbf(sys, active[k]);
        });
        const std::size_t groups = group_nodes.size();
        std::vector<double> pred_finish(groups, 0.0);
        std::vector<std::size_t> tail(groups, kNone);
        for (std::size_t k : order) {
          const std::size_t i = active[k];
          const auto& d = sys.scf_dimers[i];
          std::size_t best = 0;
          double best_eta = std::numeric_limits<double>::infinity();
          for (std::size_t g = 0; g < groups; ++g) {
            const double ng = static_cast<double>(group_nodes[g]);
            const double pred =
                dimers.models.empty()
                    ? dimer_nbf(sys, i) * dimer_nbf(sys, i) * dimer_nbf(sys, i) /
                          ng
                    : dimers.models[i].eval(ng);
            const double eta = pred_finish[g] + pred;
            if (eta < best_eta) {
              best_eta = eta;
              best = g;
            }
          }
          pred_finish[best] = best_eta;
          const auto model =
              cost.dimer(sys.fragments[d.i], sys.fragments[d.j]);
          std::vector<std::size_t> deps;
          if (tail[best] != kNone) deps.push_back(tail[best]);
          const std::size_t id = rt.add_task(
              dimer_name(sys, i),
              model.eval(static_cast<double>(group_nodes[best])),
              frag_nodes[best], std::move(deps), "dimer", false);
          tail[best] = id;
          built.emplace_back(id, i);
          built_nodes.push_back(group_nodes[best]);
          built_group.push_back(best);
          dimer_ids.push_back(id);
        }
      }
      for (std::size_t d : active) {
        if (dimer_energy_added[d]) continue;
        const auto& pair = sys.scf_dimers[d];
        out.energy.scf_dimer += scf_dimer_correction(
            sys.fragments[pair.i], sys.fragments[pair.j], pair.separation);
        dimer_energy_added[d] = 1;
      }
    }
    // Aggregated ES dimers: analytic tail over the barrier span. After a
    // failure the tail is re-scaled to the surviving budget.
    const double es =
        cost.es_dimer_time(sys, failed ? budget() : total_nodes);
    const std::size_t es_id =
        rt.add_task("es-dimers", es, barrier_set(), std::move(dimer_ids),
                    "dimer", true);

    sim::EpochState state;
    const auto rr = run_epoch(rt, &state);
    fold(rr);

    for (std::size_t k = 0; k < built.size(); ++k) {
      const auto [id, d] = built[k];
      if (!state.ran[id]) continue;
      const auto& ts = rr.tasks[id];
      const double t = ts.end - ts.start;
      if (built_group[k] == kNone) {
        out.busy_node_seconds += t * static_cast<double>(built_nodes[k]);
      } else {
        out.group_busy[built_group[k]] += t;
        out.busy_node_seconds += t * static_cast<double>(built_nodes[k]);
      }
      pending_dimers[d] = 0;
    }

    if (rr.failure_paused) {
      r.failure = true;
      r.done = !handle_failure(state);
      r.epochs_remaining = 1.0;
      r.epoch_seconds = clock - epoch_start;
      return r;
    }

    clock = rr.tasks[es_id].end;
    done = true;
    r.done = true;
    r.epoch_seconds = clock - epoch_start;
    return r;
  }

  double migration_volume(const Allocation& next) const {
    HSLB_EXPECTS(installed);
    HSLB_EXPECTS(next.tasks.size() == sys.fragments.size());
    double volume = 0.0;
    std::size_t offset = seg_first;
    for (std::size_t f = 0; f < sys.fragments.size(); ++f) {
      const auto& frag = sys.fragments[f];
      const auto n =
          static_cast<std::size_t>(next.find(frag.name).nodes);
      if (offset != frag_nodes[f].first || n != frag_nodes[f].count) {
        volume += frag.memory_gb > 0.0
                      ? frag.memory_gb
                      : 8e-9 * static_cast<double>(frag.basis_functions) *
                            static_cast<double>(frag.basis_functions);
      }
      offset += n;
    }
    return volume;
  }

  double migrate(double volume_gb) {
    const double stall = mach.migration_seconds(volume_gb);
    if (stall > 0.0) {
      out.trace.events.push_back({"migrate", "rebalance", seg_first, seg_count,
                                  clock, clock + stall, false});
      clock += stall;
    }
    return stall;
  }

  ExecutionResult finish() {
    out.energy.es_dimer = fmo2_energy(sys).es_dimer;
    out.total_seconds = clock;
    if (unrecoverable && !in_dimer) out.scc_seconds = clock;
    out.dimer_seconds = out.total_seconds - out.scc_seconds;
    out.completed = !unrecoverable;
    return std::move(out);
  }
};

EpochRunner::EpochRunner(const System& sys, const CostModel& cost,
                         long long total_nodes, const DimerPredictions& dimers,
                         const RunOptions& options)
    : impl_(new Impl(sys, cost, total_nodes, dimers, options)) {}

EpochRunner::~EpochRunner() { delete impl_; }

void EpochRunner::install(const Allocation& allocation) {
  impl_->install(allocation);
}

EpochRunner::EpochReport EpochRunner::step() { return impl_->step(); }

double EpochRunner::migrate(double volume_gb) { return impl_->migrate(volume_gb); }

double EpochRunner::migration_volume(const Allocation& next) const {
  return impl_->migration_volume(next);
}

long long EpochRunner::budget() const { return impl_->budget(); }

const sim::Machine& EpochRunner::machine() const { return impl_->mach; }

ExecutionResult EpochRunner::finish() { return impl_->finish(); }

}  // namespace hslb::fmo
