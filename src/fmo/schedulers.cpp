#include "fmo/schedulers.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <queue>

#include "common/contracts.hpp"
#include "common/stats.hpp"
#include "hslb/budget.hpp"
#include "sim/noise.hpp"

namespace hslb::fmo {

namespace {

/// Tasks (by fragment or dimer index) in descending work order — the shared
/// counter in GAMESS hands out big fragments first.
template <typename SizeOf>
std::vector<std::size_t> descending_order(std::size_t count, SizeOf&& size_of) {
  std::vector<std::size_t> order(count);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return size_of(a) > size_of(b);
  });
  return order;
}

/// One dynamically-balanced phase: tasks pulled by the earliest-free group.
/// Returns the phase makespan; adds per-group busy time into `busy` and
/// node-seconds into `busy_node_seconds`.
double dlb_phase(const std::vector<perf::Model>& task_models,
                 const std::vector<std::size_t>& order,
                 const GroupLayout& layout, sim::NoiseModel& noise,
                 std::vector<double>& busy, double& busy_node_seconds) {
  using Entry = std::pair<double, std::size_t>;  // (free time, group)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> groups;
  for (std::size_t g = 0; g < layout.num_groups(); ++g) groups.push({0.0, g});

  double makespan = 0.0;
  for (std::size_t t : order) {
    auto [free_at, g] = groups.top();
    groups.pop();
    const double duration = noise.perturb(
        task_models[t].eval(static_cast<double>(layout.sizes[g])));
    busy[g] += duration;
    busy_node_seconds += duration * static_cast<double>(layout.sizes[g]);
    const double end = free_at + duration;
    makespan = std::max(makespan, end);
    groups.push({end, g});
  }
  return makespan;
}

/// Combined dimer size key (basis functions).
double dimer_nbf(const System& sys, std::size_t d) {
  return static_cast<double>(sys.fragments[sys.scf_dimers[d].i].basis_functions +
                             sys.fragments[sys.scf_dimers[d].j].basis_functions);
}

}  // namespace

double ExecutionResult::efficiency(long long total_nodes) const {
  HSLB_EXPECTS(total_nodes >= 1);
  if (total_seconds <= 0.0) return 1.0;
  return busy_node_seconds / (static_cast<double>(total_nodes) * total_seconds);
}

double ExecutionResult::group_imbalance() const {
  if (group_busy.empty()) return 0.0;
  return stats::imbalance(group_busy);
}

ExecutionResult run_dlb(const System& sys, const CostModel& cost,
                        const GroupLayout& layout, const RunOptions& options) {
  HSLB_EXPECTS(!sys.fragments.empty());
  HSLB_EXPECTS(layout.num_groups() >= 1);
  HSLB_EXPECTS(options.scc_iterations >= 1);
  sim::NoiseModel noise(options.noise_cv, options.seed);

  ExecutionResult out;
  out.scc_iterations = options.scc_iterations;
  out.group_busy.assign(layout.num_groups(), 0.0);
  out.group_nodes = layout.sizes;

  // Monomer models are reused every SCC iteration.
  std::vector<perf::Model> monomers;
  monomers.reserve(sys.fragments.size());
  for (const auto& f : sys.fragments) monomers.push_back(cost.monomer(f));
  const auto monomer_order = descending_order(
      sys.fragments.size(),
      [&](std::size_t i) { return sys.fragments[i].basis_functions; });

  for (int iter = 0; iter < options.scc_iterations; ++iter) {
    out.scc_seconds += dlb_phase(monomers, monomer_order, layout, noise,
                                 out.group_busy, out.busy_node_seconds) +
                       options.sync_overhead;
    if (iter + 1 == options.scc_iterations) {
      // Converged densities: record the monomer energies in pull order.
      for (std::size_t f : monomer_order)
        out.energy.monomer += monomer_energy(sys.fragments[f]);
    }
  }

  // Dimer phase.
  std::vector<perf::Model> dimers;
  dimers.reserve(sys.scf_dimers.size());
  for (const auto& d : sys.scf_dimers)
    dimers.push_back(cost.dimer(sys.fragments[d.i], sys.fragments[d.j]));
  const auto dimer_order = descending_order(
      dimers.size(), [&](std::size_t i) { return dimer_nbf(sys, i); });
  if (!dimers.empty()) {
    out.dimer_seconds = dlb_phase(dimers, dimer_order, layout, noise,
                                  out.group_busy, out.busy_node_seconds);
    for (std::size_t i : dimer_order) {
      const auto& d = sys.scf_dimers[i];
      out.energy.scf_dimer += scf_dimer_correction(
          sys.fragments[d.i], sys.fragments[d.j], d.separation);
    }
  }
  out.dimer_seconds += cost.es_dimer_time(sys, layout.total_nodes());
  out.energy.es_dimer = fmo2_energy(sys).es_dimer;

  out.total_seconds = out.scc_seconds + out.dimer_seconds;
  return out;
}

ExecutionResult run_hslb(const System& sys, const CostModel& cost,
                         const Allocation& allocation, long long total_nodes,
                         const DimerPredictions& dimers,
                         const RunOptions& options) {
  HSLB_EXPECTS(!sys.fragments.empty());
  HSLB_EXPECTS(allocation.tasks.size() == sys.fragments.size());
  HSLB_EXPECTS(options.scc_iterations >= 1);
  HSLB_EXPECTS(total_nodes >= allocation.total_nodes());
  HSLB_EXPECTS(dimers.models.empty() ||
               dimers.models.size() == sys.scf_dimers.size());
  sim::NoiseModel noise(options.noise_cv, options.seed);

  ExecutionResult out;
  out.scc_iterations = options.scc_iterations;
  out.group_busy.assign(sys.fragments.size(), 0.0);
  out.group_nodes.resize(sys.fragments.size());

  std::vector<perf::Model> monomers;
  monomers.reserve(sys.fragments.size());
  for (std::size_t f = 0; f < sys.fragments.size(); ++f) {
    monomers.push_back(cost.monomer(sys.fragments[f]));
    const auto& entry = allocation.find(sys.fragments[f].name);
    HSLB_EXPECTS(entry.nodes >= 1);
    out.group_nodes[f] = entry.nodes;
  }

  // SCC loop: one concurrent wave per iteration; the wave ends when the
  // slowest fragment finishes.
  for (int iter = 0; iter < options.scc_iterations; ++iter) {
    double wave = 0.0;
    for (std::size_t f = 0; f < sys.fragments.size(); ++f) {
      const double t = noise.perturb(
          monomers[f].eval(static_cast<double>(out.group_nodes[f])));
      out.group_busy[f] += t;
      out.busy_node_seconds += t * static_cast<double>(out.group_nodes[f]);
      wave = std::max(wave, t);
    }
    out.scc_seconds += wave + options.sync_overhead;
    if (iter + 1 == options.scc_iterations) {
      for (std::size_t f = 0; f < sys.fragments.size(); ++f)
        out.energy.monomer += monomer_energy(sys.fragments[f]);
    }
  }

  // Dimer phase.
  if (!sys.scf_dimers.empty()) {
    const bool can_repartition =
        !dimers.models.empty() &&
        static_cast<long long>(sys.scf_dimers.size()) <= total_nodes;
    if (can_repartition) {
      // GDDI re-split: a fresh min-max allocation runs every SCF dimer as
      // one concurrent wave, sized by the *predicted* dimer models (the
      // greedy caps each group at the predicted argmin, so communication
      // growth is respected).
      std::vector<BudgetTask> tasks;
      tasks.reserve(sys.scf_dimers.size());
      for (std::size_t d = 0; d < sys.scf_dimers.size(); ++d) {
        tasks.push_back(BudgetTask{"d" + std::to_string(d), dimers.models[d],
                                   1, total_nodes});
      }
      const auto wave_alloc = solve_min_max(tasks, total_nodes);
      double wave = 0.0;
      for (std::size_t d = 0; d < sys.scf_dimers.size(); ++d) {
        const auto& pair = sys.scf_dimers[d];
        const auto model = cost.dimer(sys.fragments[pair.i], sys.fragments[pair.j]);
        const long long n = wave_alloc.tasks[d].nodes;
        const double t = noise.perturb(model.eval(static_cast<double>(n)));
        out.busy_node_seconds += t * static_cast<double>(n);
        wave = std::max(wave, t);
        out.energy.scf_dimer += scf_dimer_correction(
            sys.fragments[pair.i], sys.fragments[pair.j], pair.separation);
      }
      out.dimer_seconds = wave;
    } else {
      // Static earliest-completion-time assignment onto the monomer groups,
      // longest dimer first, using predicted times when available and the
      // (nbf^3 / nodes) size proxy otherwise.
      const auto order = descending_order(
          sys.scf_dimers.size(), [&](std::size_t i) { return dimer_nbf(sys, i); });
      const std::size_t groups = out.group_nodes.size();
      std::vector<double> pred_finish(groups, 0.0);
      std::vector<double> actual_finish(groups, 0.0);
      for (std::size_t i : order) {
        const auto& d = sys.scf_dimers[i];
        // Static choice: group with the earliest predicted completion.
        std::size_t best = 0;
        double best_eta = std::numeric_limits<double>::infinity();
        for (std::size_t g = 0; g < groups; ++g) {
          const double ng = static_cast<double>(out.group_nodes[g]);
          const double pred =
              dimers.models.empty()
                  ? dimer_nbf(sys, i) * dimer_nbf(sys, i) * dimer_nbf(sys, i) / ng
                  : dimers.models[i].eval(ng);
          const double eta = pred_finish[g] + pred;
          if (eta < best_eta) {
            best_eta = eta;
            best = g;
          }
        }
        pred_finish[best] = best_eta;
        const auto model = cost.dimer(sys.fragments[d.i], sys.fragments[d.j]);
        const double t = noise.perturb(
            model.eval(static_cast<double>(out.group_nodes[best])));
        out.group_busy[best] += t;
        out.busy_node_seconds += t * static_cast<double>(out.group_nodes[best]);
        actual_finish[best] += t;
        out.energy.scf_dimer += scf_dimer_correction(
            sys.fragments[d.i], sys.fragments[d.j], d.separation);
      }
      out.dimer_seconds =
          *std::max_element(actual_finish.begin(), actual_finish.end());
    }
  }
  out.dimer_seconds += cost.es_dimer_time(sys, total_nodes);
  out.energy.es_dimer = fmo2_energy(sys).es_dimer;

  out.total_seconds = out.scc_seconds + out.dimer_seconds;
  return out;
}

ExecutionResult run_hslb(const System& sys, const CostModel& cost,
                         const Allocation& allocation, long long total_nodes,
                         const RunOptions& options) {
  return run_hslb(sys, cost, allocation, total_nodes, DimerPredictions{}, options);
}

}  // namespace hslb::fmo
