#include "fmo/schedulers.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <string>
#include <utility>

#include "common/contracts.hpp"
#include "common/stats.hpp"
#include "hslb/budget.hpp"
#include "sim/runtime.hpp"

namespace hslb::fmo {

namespace {

/// Tasks (by fragment or dimer index) in descending work order — the shared
/// counter in GAMESS hands out big fragments first.
template <typename SizeOf>
std::vector<std::size_t> descending_order(std::size_t count, SizeOf&& size_of) {
  std::vector<std::size_t> order(count);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return size_of(a) > size_of(b);
  });
  return order;
}

/// Combined dimer size key (basis functions).
double dimer_nbf(const System& sys, std::size_t d) {
  return static_cast<double>(sys.fragments[sys.scf_dimers[d].i].basis_functions +
                             sys.fragments[sys.scf_dimers[d].j].basis_functions);
}

/// Trace/noise label for an SCF dimer: both fragment names.
std::string dimer_name(const System& sys, std::size_t d) {
  return sys.fragments[sys.scf_dimers[d].i].name + "+" +
         sys.fragments[sys.scf_dimers[d].j].name;
}

/// The machine the run executes on: either the one the caller provided
/// (must cover the layout) or an Intrepid-like partition derived from it.
sim::Machine run_machine(const RunOptions& options, long long total_nodes) {
  HSLB_EXPECTS(total_nodes >= 1);
  if (options.machine.nodes == 0)
    return sim::Machine{"intrepid", static_cast<std::size_t>(total_nodes), 4};
  HSLB_EXPECTS(options.machine.nodes >=
               static_cast<std::size_t>(total_nodes));
  return options.machine;
}

sim::Perturbation make_perturbation(const RunOptions& options,
                                    std::size_t machine_nodes) {
  sim::Perturbation p;
  p.noise_cv = options.noise_cv;
  p.seed = options.seed;
  if (options.straggler_cv > 0.0)
    p.node_slowdown = sim::Perturbation::stragglers(
        machine_nodes, options.straggler_cv, options.seed);
  p.fail_node = options.fail_node;
  p.fail_time = options.fail_time;
  p.fail_downtime = options.fail_downtime;
  return p;
}

/// Records a fixed full-machine overhead event (sync barrier, ES tail).
void add_overhead(sim::Trace& trace, const std::string& name,
                  const std::string& phase, double start, double seconds) {
  trace.events.push_back(
      {name, phase, 0, trace.nodes, start, start + seconds, false});
}

}  // namespace

double ExecutionResult::efficiency(long long total_nodes) const {
  HSLB_EXPECTS(total_nodes >= 1);
  if (total_seconds <= 0.0) return 1.0;
  return busy_node_seconds / (static_cast<double>(total_nodes) * total_seconds);
}

double ExecutionResult::group_imbalance() const {
  if (group_busy.empty()) return 0.0;
  return stats::imbalance(group_busy);
}

ExecutionResult run_dlb(const System& sys, const CostModel& cost,
                        const GroupLayout& layout, const RunOptions& options) {
  HSLB_EXPECTS(!sys.fragments.empty());
  HSLB_EXPECTS(layout.num_groups() >= 1);
  HSLB_EXPECTS(options.scc_iterations >= 1);
  const sim::Machine machine = run_machine(options, layout.total_nodes());
  const sim::Perturbation perturb = make_perturbation(options, machine.nodes);

  ExecutionResult out;
  out.scc_iterations = options.scc_iterations;
  out.group_busy.assign(layout.num_groups(), 0.0);
  out.group_nodes = layout.sizes;
  out.trace.machine = machine.name;
  out.trace.nodes = machine.nodes;
  out.trace.cores_per_node = machine.cores_per_node;

  // Groups occupy contiguous node blocks in layout order from node 0.
  std::vector<sim::NodeSet> groups;
  groups.reserve(layout.num_groups());
  std::size_t offset = 0;
  for (long long size : layout.sizes) {
    groups.push_back({offset, static_cast<std::size_t>(size)});
    offset += static_cast<std::size_t>(size);
  }

  // Monomer models are reused every SCC iteration.
  std::vector<perf::Model> monomers;
  monomers.reserve(sys.fragments.size());
  for (const auto& f : sys.fragments) monomers.push_back(cost.monomer(f));
  const auto monomer_order = descending_order(
      sys.fragments.size(),
      [&](std::size_t i) { return sys.fragments[i].basis_functions; });
  // Per-fragment demand: one replicated halo per SCF neighbour, plus the
  // fragment's working set (both zero outside the comm scenario family).
  const auto pairs = sys.scf_neighbor_counts();

  // Drains one queue phase on the machine clock and folds the result into
  // the accumulators; returns the phase-end time (= queue makespan).
  auto drain = [&](const std::vector<sim::Runtime::QueueTask>& queue,
                   double clock, bool monomer_phase) {
    const auto res =
        sim::Runtime::run_queue(machine, groups, queue, perturb, clock);
    out.trace.append(res.trace);
    out.restarts += res.restarts;
    if (!res.completed) out.completed = false;
    out.comm_seconds += res.comm_seconds;
    out.page_seconds += res.page_seconds;
    for (std::size_t g = 0; g < groups.size(); ++g) {
      out.group_busy[g] += res.group_busy[g];
      out.busy_node_seconds +=
          res.group_busy[g] * static_cast<double>(layout.sizes[g]);
      if (monomer_phase) out.monomer_task_seconds += res.group_busy[g];
    }
    return res.makespan;
  };

  double clock = 0.0;
  for (int iter = 0; iter < options.scc_iterations; ++iter) {
    const std::string phase = "scc" + std::to_string(iter);
    std::vector<sim::Runtime::QueueTask> queue;
    queue.reserve(monomer_order.size());
    for (std::size_t f : monomer_order) {
      const perf::Model model = monomers[f];
      queue.push_back(
          {sys.fragments[f].name,
           [model](long long n) { return model.eval(static_cast<double>(n)); },
           phase,
           sys.fragments[f].halo_gb * static_cast<double>(pairs[f]),
           sys.fragments[f].memory_gb});
    }
    const double end = drain(queue, clock, true);
    out.scc_seconds += (end - clock) + options.sync_overhead;
    add_overhead(out.trace, "sync", phase, end, options.sync_overhead);
    clock = end + options.sync_overhead;
    if (iter + 1 == options.scc_iterations) {
      // Converged densities: record the monomer energies in pull order.
      for (std::size_t f : monomer_order)
        out.energy.monomer += monomer_energy(sys.fragments[f]);
    }
  }

  // Dimer phase.
  std::vector<perf::Model> dimers;
  dimers.reserve(sys.scf_dimers.size());
  for (const auto& d : sys.scf_dimers)
    dimers.push_back(cost.dimer(sys.fragments[d.i], sys.fragments[d.j]));
  const auto dimer_order = descending_order(
      dimers.size(), [&](std::size_t i) { return dimer_nbf(sys, i); });
  if (!dimers.empty()) {
    std::vector<sim::Runtime::QueueTask> queue;
    queue.reserve(dimer_order.size());
    for (std::size_t i : dimer_order) {
      const perf::Model model = dimers[i];
      queue.push_back(
          {dimer_name(sys, i),
           [model](long long n) { return model.eval(static_cast<double>(n)); },
           "dimer"});
    }
    const double end = drain(queue, clock, false);
    out.dimer_seconds = end - clock;
    clock = end;
    for (std::size_t i : dimer_order) {
      const auto& d = sys.scf_dimers[i];
      out.energy.scf_dimer += scf_dimer_correction(
          sys.fragments[d.i], sys.fragments[d.j], d.separation);
    }
  }
  const double es = cost.es_dimer_time(sys, layout.total_nodes());
  out.dimer_seconds += es;
  add_overhead(out.trace, "es-dimers", "dimer", clock, es);
  out.energy.es_dimer = fmo2_energy(sys).es_dimer;

  out.total_seconds = out.scc_seconds + out.dimer_seconds;
  return out;
}

ExecutionResult run_hslb(const System& sys, const CostModel& cost,
                         const Allocation& allocation, long long total_nodes,
                         const DimerPredictions& dimers,
                         const RunOptions& options) {
  HSLB_EXPECTS(!sys.fragments.empty());
  HSLB_EXPECTS(allocation.tasks.size() == sys.fragments.size());
  HSLB_EXPECTS(options.scc_iterations >= 1);
  HSLB_EXPECTS(total_nodes >= allocation.total_nodes());
  HSLB_EXPECTS(dimers.models.empty() ||
               dimers.models.size() == sys.scf_dimers.size());
  const sim::Machine machine = run_machine(options, total_nodes);
  const sim::Perturbation perturb = make_perturbation(options, machine.nodes);

  ExecutionResult out;
  out.scc_iterations = options.scc_iterations;
  out.group_busy.assign(sys.fragments.size(), 0.0);
  out.group_nodes.resize(sys.fragments.size());

  std::vector<perf::Model> monomers;
  monomers.reserve(sys.fragments.size());
  for (std::size_t f = 0; f < sys.fragments.size(); ++f) {
    monomers.push_back(cost.monomer(sys.fragments[f]));
    const auto& entry = allocation.find(sys.fragments[f].name);
    HSLB_EXPECTS(entry.nodes >= 1);
    out.group_nodes[f] = entry.nodes;
  }

  // Fragment groups occupy contiguous node blocks in fragment order.
  std::vector<sim::NodeSet> frag_nodes(sys.fragments.size());
  std::size_t offset = 0;
  for (std::size_t f = 0; f < sys.fragments.size(); ++f) {
    frag_nodes[f] = {offset, static_cast<std::size_t>(out.group_nodes[f])};
    offset += static_cast<std::size_t>(out.group_nodes[f]);
  }

  sim::Runtime rt(machine);
  const sim::NodeSet all{0, machine.nodes};
  constexpr std::size_t kNone = static_cast<std::size_t>(-1);
  const auto pairs = sys.scf_neighbor_counts();

  // SCC loop: one concurrent wave of fragment tasks per iteration, closed
  // by a full-machine synchronization barrier (charge exchange).
  std::vector<std::pair<std::size_t, std::size_t>> monomer_ids;  // (task, f)
  std::size_t last_sync = kNone;
  for (int iter = 0; iter < options.scc_iterations; ++iter) {
    const std::string phase = "scc" + std::to_string(iter);
    std::vector<std::size_t> wave;
    wave.reserve(sys.fragments.size());
    for (std::size_t f = 0; f < sys.fragments.size(); ++f) {
      std::vector<std::size_t> deps;
      if (last_sync != kNone) deps.push_back(last_sync);
      const std::size_t id = rt.add_task(
          sys.fragments[f].name,
          monomers[f].eval(static_cast<double>(out.group_nodes[f])),
          frag_nodes[f], std::move(deps), phase, false,
          {sys.fragments[f].halo_gb * static_cast<double>(pairs[f]),
           sys.fragments[f].memory_gb});
      monomer_ids.emplace_back(id, f);
      wave.push_back(id);
    }
    last_sync = rt.add_task("sync", options.sync_overhead, all,
                            std::move(wave), phase, true);
    if (iter + 1 == options.scc_iterations) {
      for (std::size_t f = 0; f < sys.fragments.size(); ++f)
        out.energy.monomer += monomer_energy(sys.fragments[f]);
    }
  }

  // Dimer phase.
  std::vector<std::pair<std::size_t, long long>> wave_dimer_ids;  // (task, n)
  std::vector<std::pair<std::size_t, std::size_t>> ect_dimer_ids;  // (task, g)
  std::vector<std::size_t> dimer_ids;
  if (!sys.scf_dimers.empty()) {
    const bool can_repartition =
        !dimers.models.empty() &&
        static_cast<long long>(sys.scf_dimers.size()) <= total_nodes;
    if (can_repartition) {
      // GDDI re-split: a fresh min-max allocation runs every SCF dimer as
      // one concurrent wave, sized by the *predicted* dimer models (the
      // greedy caps each group at the predicted argmin, so communication
      // growth is respected). Dimer groups occupy contiguous blocks in
      // dimer-index order.
      std::vector<BudgetTask> tasks;
      tasks.reserve(sys.scf_dimers.size());
      for (std::size_t d = 0; d < sys.scf_dimers.size(); ++d) {
        tasks.push_back(BudgetTask{"d" + std::to_string(d), dimers.models[d],
                                   1, total_nodes});
      }
      const auto wave_alloc = solve_min_max(tasks, total_nodes);
      std::size_t dimer_offset = 0;
      for (std::size_t d = 0; d < sys.scf_dimers.size(); ++d) {
        const auto& pair = sys.scf_dimers[d];
        const auto model =
            cost.dimer(sys.fragments[pair.i], sys.fragments[pair.j]);
        const long long n = wave_alloc.tasks[d].nodes;
        const std::size_t id = rt.add_task(
            dimer_name(sys, d), model.eval(static_cast<double>(n)),
            {dimer_offset, static_cast<std::size_t>(n)}, {last_sync}, "dimer",
            false);
        dimer_offset += static_cast<std::size_t>(n);
        wave_dimer_ids.emplace_back(id, n);
        dimer_ids.push_back(id);
        out.energy.scf_dimer += scf_dimer_correction(
            sys.fragments[pair.i], sys.fragments[pair.j], pair.separation);
      }
    } else {
      // Static earliest-completion-time assignment onto the monomer groups,
      // longest dimer first, using predicted times when available and the
      // (nbf^3 / nodes) size proxy otherwise. Each group's dimers form a
      // chain after the last synchronization.
      const auto order = descending_order(
          sys.scf_dimers.size(), [&](std::size_t i) { return dimer_nbf(sys, i); });
      const std::size_t groups = out.group_nodes.size();
      std::vector<double> pred_finish(groups, 0.0);
      std::vector<std::size_t> tail(groups, kNone);
      for (std::size_t i : order) {
        const auto& d = sys.scf_dimers[i];
        // Static choice: group with the earliest predicted completion.
        std::size_t best = 0;
        double best_eta = std::numeric_limits<double>::infinity();
        for (std::size_t g = 0; g < groups; ++g) {
          const double ng = static_cast<double>(out.group_nodes[g]);
          const double pred =
              dimers.models.empty()
                  ? dimer_nbf(sys, i) * dimer_nbf(sys, i) * dimer_nbf(sys, i) / ng
                  : dimers.models[i].eval(ng);
          const double eta = pred_finish[g] + pred;
          if (eta < best_eta) {
            best_eta = eta;
            best = g;
          }
        }
        pred_finish[best] = best_eta;
        const auto model = cost.dimer(sys.fragments[d.i], sys.fragments[d.j]);
        const std::size_t prev = tail[best] == kNone ? last_sync : tail[best];
        const std::size_t id = rt.add_task(
            dimer_name(sys, i),
            model.eval(static_cast<double>(out.group_nodes[best])),
            frag_nodes[best], {prev}, "dimer", false);
        tail[best] = id;
        ect_dimer_ids.emplace_back(id, best);
        dimer_ids.push_back(id);
        out.energy.scf_dimer += scf_dimer_correction(
            sys.fragments[d.i], sys.fragments[d.j], d.separation);
      }
    }
  }
  // Aggregated ES dimers: an analytic full-machine tail after every SCF
  // dimer (fixed: no noise, no stragglers).
  const double es = cost.es_dimer_time(sys, total_nodes);
  const std::size_t es_id =
      rt.add_task("es-dimers", es, all,
                  dimer_ids.empty() ? std::vector<std::size_t>{last_sync}
                                    : dimer_ids,
                  "dimer", true);
  out.energy.es_dimer = fmo2_energy(sys).es_dimer;

  const auto rr = rt.run(perturb);
  out.trace = rr.trace;
  out.completed = rr.completed;
  out.restarts = rr.restarts;
  out.comm_seconds = rr.comm_seconds;
  out.page_seconds = rr.page_seconds;

  // Reconstruct the work accounting from the placements; sync barriers and
  // the ES tail occupy nodes but are overhead, not work. Tasks a permanent
  // failure kept from running contribute nothing.
  auto ran_for = [&](std::size_t id) {
    const auto& s = rr.tasks[id];
    return std::isfinite(s.end) ? s.end - s.start : 0.0;
  };
  for (const auto& [id, f] : monomer_ids) {
    const double t = ran_for(id);
    out.group_busy[f] += t;
    out.busy_node_seconds += t * static_cast<double>(out.group_nodes[f]);
    out.monomer_task_seconds += t;
  }
  for (const auto& [id, n] : wave_dimer_ids)
    out.busy_node_seconds += ran_for(id) * static_cast<double>(n);
  for (const auto& [id, g] : ect_dimer_ids) {
    const double t = ran_for(id);
    out.group_busy[g] += t;
    out.busy_node_seconds += t * static_cast<double>(out.group_nodes[g]);
  }

  const double scc_end = rr.tasks[last_sync].end;
  out.scc_seconds = std::isfinite(scc_end) ? scc_end : rr.makespan;
  const double run_end = rr.tasks[es_id].end;
  out.total_seconds = std::isfinite(run_end) ? run_end : rr.makespan;
  out.dimer_seconds = out.total_seconds - out.scc_seconds;
  return out;
}

ExecutionResult run_hslb(const System& sys, const CostModel& cost,
                         const Allocation& allocation, long long total_nodes,
                         const RunOptions& options) {
  return run_hslb(sys, cost, allocation, total_nodes, DimerPredictions{}, options);
}

}  // namespace hslb::fmo
