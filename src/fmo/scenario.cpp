#include "fmo/scenario.hpp"

#include <stdexcept>

namespace hslb::fmo {

System make_system(const std::string& variant, std::size_t fragments,
                   std::uint64_t seed) {
  // Parameter choices match what `hslb fmo` has always built, so routing
  // the CLI through this factory keeps its output byte-identical.
  if (variant.empty() || variant == "water") {
    return water_cluster({.fragments = fragments,
                          .merge_fraction = 0.4,
                          .scf_cutoff_angstrom = 4.5,
                          .seed = seed});
  }
  if (variant == "peptide") {
    return polypeptide(
        {.residues = fragments, .scf_cutoff_angstrom = 6.0, .seed = seed});
  }
  if (variant == "comm") {
    return comm_cluster({.fragments = fragments, .seed = seed});
  }
  throw std::invalid_argument("unknown fmo system variant '" + variant +
                              "' (known: water, peptide, comm)");
}

std::vector<std::string> system_variants() {
  return {"water", "peptide", "comm"};
}

}  // namespace hslb::fmo
