// Synthetic FMO2 energy bookkeeping.
//
// The load balancer only reorders *where and when* fragment calculations
// run; the chemistry must not change. This module assigns every fragment a
// deterministic synthetic monomer energy and every pair a dimer correction
// (full SCF for near pairs, electrostatic approximation for far pairs) and
// assembles the FMO2 total energy
//
//     E = sum_I E_I + sum_{I<J} (E_IJ - E_I - E_J)
//
// entirely from the System definition. Tests assert that HSLB and DLB
// executions of the same system report the same energy — the
// schedule-independence invariant a reviewer of a real FMO scheduler would
// demand.
#pragma once

#include "fmo/fragment.hpp"

namespace hslb::fmo {

struct EnergyBreakdown {
  double monomer = 0.0;    ///< sum of monomer SCF energies (Hartree)
  double scf_dimer = 0.0;  ///< pair corrections from full dimer SCF
  double es_dimer = 0.0;   ///< pair corrections from the ES approximation
  double total() const { return monomer + scf_dimer + es_dimer; }
};

/// Deterministic synthetic monomer SCF energy of a fragment (Hartree,
/// negative, roughly -76 per water-equivalent 25 basis functions with a
/// fragment-specific deterministic perturbation).
double monomer_energy(const Fragment& f);

/// Pair correction of a full SCF dimer: attractive, decaying with the
/// centroid separation.
double scf_dimer_correction(const Fragment& a, const Fragment& b,
                            double separation_angstrom);

/// Pair correction of an ES-approximated (far) pair at the given
/// separation: the classical-electrostatics tail of the same decay.
double es_dimer_correction(const Fragment& a, const Fragment& b,
                           double separation_angstrom);

/// Full FMO2 energy of a system. Pure function of the System — independent
/// of any scheduling decision by construction; the scheduler tests verify
/// their executions against this reference.
EnergyBreakdown fmo2_energy(const System& sys);

}  // namespace hslb::fmo
