#include "fmo/driver.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"
#include "sim/noise.hpp"

namespace hslb::fmo {

long long probe_ceiling(const System& sys, long long nodes) {
  HSLB_EXPECTS(nodes >= static_cast<long long>(sys.num_fragments()));
  const auto frags = static_cast<long long>(sys.num_fragments());
  // A fragment can never get more than budget - (F-1) nodes; probing much
  // beyond several fair shares is wasted benchmark time.
  const long long fair = std::max<long long>(1, nodes / frags);
  return std::max<long long>(8, std::min(nodes - frags + 1, 8 * fair));
}

std::vector<BudgetTask> make_budget_tasks(
    const System& sys,
    const std::vector<std::pair<std::string, perf::FitResult>>& fits,
    long long max_nodes_per_fragment) {
  HSLB_EXPECTS(fits.size() == sys.num_fragments());
  std::vector<BudgetTask> tasks;
  tasks.reserve(fits.size());
  for (const auto& [name, fit] : fits) {
    tasks.push_back(BudgetTask{name, fit.model, 1, max_nodes_per_fragment});
  }
  return tasks;
}

PipelineResult run_pipeline(const System& sys, const CostModel& cost,
                            long long nodes, const PipelineOptions& options) {
  HSLB_EXPECTS(nodes >= static_cast<long long>(sys.num_fragments()));
  HSLB_EXPECTS(options.fit_points >= 2);
  PipelineResult out;

  // -- Step 1: Gather ------------------------------------------------------
  const long long hi = probe_ceiling(sys, nodes);
  const auto counts = geometric_node_counts(1, hi, options.fit_points);
  sim::NoiseModel bench_noise(options.bench_noise_cv, options.seed);

  std::vector<perf::Model> truth;
  std::vector<std::string> names;
  truth.reserve(sys.num_fragments());
  for (const auto& f : sys.fragments) {
    truth.push_back(cost.monomer(f));
    names.push_back(f.name);
  }
  GatherOptions gopt;
  gopt.repetitions = options.repetitions;
  out.bench = gather(
      names, counts,
      [&](const std::string& task, long long n, std::uint64_t) {
        // Locate the fragment for this task name (names are unique).
        for (std::size_t f = 0; f < names.size(); ++f) {
          if (names[f] == task)
            return bench_noise.perturb(truth[f].eval(static_cast<double>(n)));
        }
        HSLB_ASSERT(!"unknown task");
        return 0.0;
      },
      gopt);

  // -- Step 2: Fit ----------------------------------------------------------
  out.fits = perf::fit_all(out.bench, options.fit);
  out.min_r2 = 1.0;
  double r2_sum = 0.0;
  for (const auto& [name, fit] : out.fits) {
    out.min_r2 = std::min(out.min_r2, fit.r2);
    r2_sum += fit.r2;
  }
  out.mean_r2 = r2_sum / static_cast<double>(out.fits.size());

  // -- Step 3: Solve --------------------------------------------------------
  const auto tasks = make_budget_tasks(sys, out.fits, hi);
  out.allocation = solve_budget(tasks, nodes, options.objective);
  // Predicted SCC loop: every iteration runs one wave of all fragments.
  const double wave = [&] {
    double w = 0.0;
    for (const auto& t : out.allocation.tasks)
      w = std::max(w, t.predicted_seconds);
    return w;
  }();
  out.predicted_scc_seconds =
      static_cast<double>(options.run.scc_iterations) *
      (wave + options.run.sync_overhead);

  // -- Steps 1b/2b: probe and fit a representative dimer subset -------------
  if (options.dimer_probe_count > 0 && !sys.scf_dimers.empty()) {
    // Pick probes spread across the combined-size range.
    std::vector<std::size_t> by_size(sys.scf_dimers.size());
    for (std::size_t d = 0; d < by_size.size(); ++d) by_size[d] = d;
    auto size_of = [&](std::size_t d) {
      return sys.fragments[sys.scf_dimers[d].i].basis_functions +
             sys.fragments[sys.scf_dimers[d].j].basis_functions;
    };
    std::sort(by_size.begin(), by_size.end(),
              [&](std::size_t a, std::size_t b) { return size_of(a) < size_of(b); });
    std::vector<std::size_t> probes;
    const std::size_t want =
        std::min(options.dimer_probe_count, sys.scf_dimers.size());
    for (std::size_t k = 0; k < want; ++k) {
      const auto pos = want == 1 ? 0
                                 : k * (by_size.size() - 1) / (want - 1);
      if (probes.empty() || probes.back() != by_size[pos])
        probes.push_back(by_size[pos]);
    }

    // Probe + fit each selected dimer at the same node counts.
    struct Probed {
      double nbf;
      perf::Model model;
    };
    std::vector<Probed> fitted;
    for (std::size_t d : probes) {
      const auto& pair = sys.scf_dimers[d];
      const auto true_model =
          cost.dimer(sys.fragments[pair.i], sys.fragments[pair.j]);
      perf::SampleSet samples;
      for (long long n : counts) {
        for (std::size_t rep = 0; rep < options.repetitions; ++rep) {
          samples.push_back(
              {static_cast<double>(n),
               bench_noise.perturb(true_model.eval(static_cast<double>(n)))});
        }
      }
      const auto fit = perf::fit(samples, options.fit);
      out.dimer_min_r2 = std::min(out.dimer_min_r2, fit.r2);
      fitted.push_back(
          Probed{static_cast<double>(size_of(d)), fit.model});
    }

    // Scale every dimer's model from the nearest probed size: SCF work
    // grows ~ nbf^3 (a, d) and communication ~ nbf^2 (b).
    out.dimer_predictions.models.resize(sys.scf_dimers.size());
    for (std::size_t d = 0; d < sys.scf_dimers.size(); ++d) {
      const double s = static_cast<double>(size_of(d));
      const Probed* nearest = &fitted.front();
      for (const auto& p : fitted) {
        if (std::fabs(p.nbf - s) < std::fabs(nearest->nbf - s)) nearest = &p;
      }
      const double work_ratio = std::pow(s / nearest->nbf, 3.0);
      const double comm_ratio = std::pow(s / nearest->nbf, 2.0);
      perf::Model m = nearest->model;
      m.a *= work_ratio;
      m.d *= work_ratio;
      m.b *= comm_ratio;
      out.dimer_predictions.models[d] = m;
    }
  }

  // -- Step 4: Execute ------------------------------------------------------
  out.hslb = run_hslb(sys, cost, out.allocation, nodes, out.dimer_predictions,
                      options.run);

  const std::size_t dlb_groups =
      options.dlb_groups == 0 ? sys.num_fragments() : options.dlb_groups;
  out.dlb = run_dlb(sys, cost, GroupLayout::uniform(nodes, dlb_groups),
                    options.run);
  return out;
}

}  // namespace hslb::fmo
