#include "fmo/driver.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <unordered_map>

#include "common/contracts.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "hslb/registry.hpp"
#include "perf/terms.hpp"
#include "sim/noise.hpp"

namespace hslb::fmo {

long long probe_ceiling(const System& sys, long long nodes) {
  HSLB_EXPECTS(nodes >= static_cast<long long>(sys.num_fragments()));
  const auto frags = static_cast<long long>(sys.num_fragments());
  // A fragment can never get more than budget - (F-1) nodes; probing much
  // beyond several fair shares is wasted benchmark time.
  const long long fair = std::max<long long>(1, nodes / frags);
  return std::max<long long>(8, std::min(nodes - frags + 1, 8 * fair));
}

std::vector<BudgetTask> make_budget_tasks(
    const System& sys,
    const std::vector<std::pair<std::string, perf::FitResult>>& fits,
    long long max_nodes_per_fragment) {
  HSLB_EXPECTS(fits.size() == sys.num_fragments());
  std::vector<BudgetTask> tasks;
  tasks.reserve(fits.size());
  for (const auto& [name, fit] : fits) {
    tasks.push_back(BudgetTask{name, fit.model, 1, max_nodes_per_fragment});
  }
  return tasks;
}

namespace {

/// Copies branch-and-bound diagnostics into the report row shape.
void copy_bnb_stats(SolverStats& out, const minlp::BnbResult& bnb,
                    std::size_t solver_threads) {
  out.status = minlp::to_string(bnb.status);
  out.nodes = bnb.nodes;
  out.cuts = bnb.cuts;
  out.gap = bnb.gap;
  out.rel_gap = bnb.rel_gap;
  out.seconds = bnb.seconds;
  out.threads =
      solver_threads == 0 ? ThreadPool::hardware_threads() : solver_threads;
  out.lp_solves = bnb.lp_solves;
  out.lp_pivots = bnb.lp_pivots;
  out.warm_solves = bnb.warm_solves;
  out.waves = bnb.waves;
  out.eta_nnz = bnb.lp_stats.eta_nnz;
  out.eta_dense_nnz = bnb.lp_stats.eta_dense_nnz;
  out.eta_compression = bnb.lp_stats.eta_compression();
  out.flop_reduction = bnb.lp_stats.flop_reduction();
  out.refactorizations = bnb.lp_stats.refactorizations;
  out.basis_nnz = bnb.lp_stats.basis_nnz;
  out.lu_fill = bnb.lp_stats.lu_fill;
  out.ft_updates = bnb.lp_stats.ft_updates;
  out.ft_fill_nnz = bnb.lp_stats.ft_fill_nnz;
  out.refactor_interval_hits = bnb.lp_stats.refactor_interval_hits;
  out.refactor_fill_hits = bnb.lp_stats.refactor_fill_hits;
  out.refactor_drift_hits = bnb.lp_stats.refactor_drift_hits;
  out.dual_pivots = bnb.lp_stats.dual_pivots;
  out.phase1_pivots = bnb.lp_stats.phase1_pivots;
  out.dual_phase1_avoided = bnb.lp_stats.dual_phase1_avoided;
  out.presolve_rows_removed = bnb.lp_stats.presolve_rows_removed;
  out.presolve_cols_removed = bnb.lp_stats.presolve_cols_removed;
  out.bounds_tightened = bnb.bounds_tightened;
  out.nodes_propagated_infeasible = bnb.nodes_propagated_infeasible;
  out.cuts_retired = bnb.cuts_retired;
  out.cuts_reactivated = bnb.cuts_reactivated;
}

/// Fitted parameters of every task's cost model, concatenated — equality
/// means the MINLP's nonlinear constraints are unchanged, which is the
/// validity condition for reusing a previous solve's cut pool verbatim.
std::vector<double> flatten_fit_params(
    const std::vector<std::pair<std::string, perf::FitResult>>& fits) {
  std::vector<double> out;
  for (const auto& [name, fit] : fits) {
    for (std::size_t i = 0; i < fit.cost.num_terms(); ++i) {
      const auto p = fit.cost.params(i);
      out.insert(out.end(), p.begin(), p.end());
    }
  }
  return out;
}

/// The FMO substrate behind the hslb::Pipeline engine. Probe noise is
/// derived per (fragment, node count, repetition) so Gather parallelizes
/// with identical results for every thread count; stream indices
/// [0, F) are the monomer fragments, [F, F + #dimers) the probed dimers.
class FmoApplication final : public Application, public BaselineReporter {
 public:
  FmoApplication(const System& sys, const CostModel& cost, long long nodes,
                 const PipelineOptions& options)
      : sys_(sys), cost_(cost), nodes_(nodes), options_(options) {
    hi_ = probe_ceiling(sys, nodes);
    counts_ = geometric_node_counts(1, hi_, options.fit_points);
    truth_.reserve(sys.num_fragments());
    names_.reserve(sys.num_fragments());
    for (std::size_t f = 0; f < sys.fragments.size(); ++f) {
      truth_.push_back(cost.monomer(sys.fragments[f]));
      names_.push_back(sys.fragments[f].name);
      index_of_[sys.fragments[f].name] = f;
    }
  }

  std::string name() const override { return "fmo/" + sys_.name; }

  GatherPlan gather_plan() override {
    GatherPlan plan;
    plan.reserve(names_.size());
    for (const auto& n : names_) plan.emplace_back(n, counts_);
    return plan;
  }

  double probe(const std::string& task, long long n,
               std::uint64_t rep) override {
    const auto it = index_of_.find(task);
    HSLB_ASSERT(it != index_of_.end());
    return noisy(truth_[it->second].eval(static_cast<double>(n)), it->second,
                 n, rep);
  }

  perf::FitOptions fit_options() const override { return options_.fit; }

  SolveOutcome solve(const std::vector<std::pair<std::string, perf::FitResult>>&
                         fits) override {
    SolveOutcome out;
    auto tasks = make_budget_tasks(sys_, fits, hi_);
    add_machine_terms(tasks);
    if (options_.solve_with_minlp) {
      const auto model = build_budget_minlp(tasks, nodes_, options_.objective);
      minlp::BnbOptions bnb_opt = options_.bnb;
      // Cross-instance warm seeding (same idiom as resolve()'s closed-loop
      // seeds, but the donor is a *previous pipeline* found by the
      // allocation service): the donor allocation clamped into this
      // instance's boxes becomes the candidate incumbent and a fresh
      // linearization point; the donor optimum is re-linearized too; the
      // donor cut pool is reused only when the fits are bitwise equal.
      const SolveSeed& seed = options_.solve_seed;
      if (!seed.empty() &&
          (options_.objective == Objective::MinMax ||
           options_.objective == Objective::MinSum)) {
        if (seed.nodes_by_task.size() == tasks.size()) {
          std::vector<long long> warm_nodes = seed.nodes_by_task;
          for (std::size_t f = 0; f < tasks.size(); ++f) {
            warm_nodes[f] = std::clamp(warm_nodes[f], tasks[f].min_nodes,
                                       tasks[f].max_nodes);
          }
          bnb_opt.seed_incumbent =
              minlp_warm_start(tasks, warm_nodes, options_.objective);
          bnb_opt.seed_points.push_back(bnb_opt.seed_incumbent);
        }
        if (!seed.x.empty()) bnb_opt.seed_points.push_back(seed.x);
        if (!seed.cuts.empty() &&
            seed.fit_params == flatten_fit_params(fits))
          bnb_opt.seed_cuts = seed.cuts;
      }
      const auto bnb = minlp::solve(model, bnb_opt);
      out.allocation = allocation_from_minlp(tasks, bnb.x, options_.objective);
      copy_bnb_stats(out.solver, bnb, options_.bnb.solver_threads);
      seed_accepted_ = bnb.seed_accepted;
      // Remember what the search learned for closed-loop warm re-solves.
      last_x_ = bnb.x;
      last_pool_ = bnb.pool_cuts;
      last_fit_params_ = flatten_fit_params(fits);
    } else {
      out.allocation = solve_budget(tasks, nodes_, options_.objective);
      out.solver.status = to_string(options_.objective) + " exact greedy";
    }
    // Predicted SCC loop: every iteration runs one wave of all fragments.
    double wave = 0.0;
    for (const auto& t : out.allocation.tasks)
      wave = std::max(wave, t.predicted_seconds);
    predicted_scc_seconds_ =
        static_cast<double>(options_.run.scc_iterations) *
        (wave + options_.run.sync_overhead);
    out.predicted_total = predicted_scc_seconds_;
    // Term-wise predicted task-seconds over the SCC loop (allocation
    // entries are in task order for both solver paths).
    const double iters = static_cast<double>(options_.run.scc_iterations);
    for (std::size_t f = 0; f < tasks.size(); ++f) {
      const double n = static_cast<double>(out.allocation.tasks[f].nodes);
      const auto& m = tasks[f].model;
      for (std::size_t i = 0; i < m.num_terms(); ++i) {
        const std::string& tn = m.term(i).name();
        auto it = std::find_if(
            out.term_predictions.begin(), out.term_predictions.end(),
            [&](const TermReport& r) { return r.term == tn; });
        if (it == out.term_predictions.end()) {
          out.term_predictions.push_back({tn, 0.0, 0.0});
          it = std::prev(out.term_predictions.end());
        }
        it->predicted_seconds += iters * m.term_seconds(i, n);
      }
    }
    return out;
  }

  double execute(const SolveOutcome& solution) override {
    probe_and_fit_dimers();
    hslb_ = run_hslb(sys_, cost_, solution.allocation, nodes_,
                     dimer_predictions_, options_.run);
    const std::size_t dlb_groups =
        options_.dlb_groups == 0 ? sys_.num_fragments() : options_.dlb_groups;
    dlb_ = run_dlb(sys_, cost_, GroupLayout::uniform(nodes_, dlb_groups),
                   options_.run);
    return hslb_.scc_seconds;
  }

  sim::Machine machine() const override {
    if (options_.run.machine.nodes > 0) return options_.run.machine;
    return sim::Machine{"intrepid", static_cast<std::size_t>(nodes_), 4};
  }

  const sim::Trace* execution_trace() const override { return &hslb_.trace; }

  bool execution_completed() const override { return hslb_.completed; }

  std::vector<std::pair<std::string, double>> execution_term_seconds()
      const override {
    // Monomer task-seconds split into the machine charges and the rest
    // (the compute share the fitted power law predicts). Comm/memory rows
    // are reported whenever the machine models them — even when the Solve
    // step ignored those charges (machine_cost_terms = false), which is
    // exactly the predicted-0 / actual-nonzero gap the report surfaces.
    std::vector<std::pair<std::string, double>> out;
    out.emplace_back("powerlaw", hslb_.monomer_task_seconds -
                                     hslb_.comm_seconds - hslb_.page_seconds);
    const sim::Machine mach = machine();
    if (mach.models_communication())
      out.emplace_back("comm", hslb_.comm_seconds);
    if (mach.models_memory()) out.emplace_back("memory", hslb_.page_seconds);
    return out;
  }

  // -- Adaptive execution (closed loop) -------------------------------------
  // One SCC iteration (wave + sync) per epoch, then one dimer-phase epoch,
  // driven through fmo::EpochRunner so an untriggered adaptive run matches
  // execute() bit-exactly.

  bool supports_epochs() const override { return true; }

  void begin_epochs(const SolveOutcome& solution) override {
    probe_and_fit_dimers();
    runner_ = std::make_unique<EpochRunner>(sys_, cost_, nodes_,
                                            dimer_predictions_, options_.run);
    runner_->install(solution.allocation);
  }

  EpochOutcome execute_epoch(std::size_t epoch) override {
    (void)epoch;
    EpochRunner::EpochReport er = runner_->step();
    EpochOutcome eo;
    eo.done = er.done;
    eo.failure_detected = er.failure;
    eo.epoch_seconds = er.epoch_seconds;
    eo.imbalance = er.imbalance;
    eo.epochs_remaining = er.epochs_remaining;
    eo.observations = std::move(er.observations);
    return eo;
  }

  ResolveOutcome resolve(
      const std::vector<std::pair<std::string, perf::FitResult>>& fits,
      const SolveOutcome& incumbent) override {
    const long long budget = runner_->budget();
    auto tasks = make_budget_tasks(sys_, fits, std::min(hi_, budget));
    add_machine_terms(tasks);
    std::vector<long long> inc_nodes;
    inc_nodes.reserve(tasks.size());
    for (const auto& t : tasks)
      inc_nodes.push_back(incumbent.allocation.find(t.name).nodes);

    SolveOutcome out;
    if (options_.solve_with_minlp) {
      const auto model = build_budget_minlp(tasks, budget, options_.objective);
      minlp::BnbOptions bnb_opt = options_.bnb;
      // Warm seeding: the running allocation lifted into the new variable
      // space (candidate incumbent + fresh linearization point), the
      // previous optimum re-linearized under the refitted models, and —
      // when the models are unchanged (pure budget/bounds change, e.g. a
      // node failure before any observation) — the previous cut pool
      // verbatim.
      bnb_opt.seed_incumbent =
          minlp_warm_start(tasks, inc_nodes, options_.objective);
      bnb_opt.seed_points.push_back(bnb_opt.seed_incumbent);
      if (!last_x_.empty()) bnb_opt.seed_points.push_back(last_x_);
      if (!last_pool_.empty() && flatten_fit_params(fits) == last_fit_params_)
        bnb_opt.seed_cuts = last_pool_;
      const auto bnb = minlp::solve(model, bnb_opt);
      out.allocation = allocation_from_minlp(tasks, bnb.x, options_.objective);
      copy_bnb_stats(out.solver, bnb, options_.bnb.solver_threads);
      last_x_ = bnb.x;
      last_pool_ = bnb.pool_cuts;
      last_fit_params_ = flatten_fit_params(fits);
    } else {
      out.allocation = solve_budget(tasks, budget, options_.objective);
      out.solver.status =
          to_string(options_.objective) + " exact greedy (warm)";
    }
    resolve_stats_.push_back(out.solver);

    // Per-epoch predictions for the accept test: one wave plus its sync.
    std::vector<long long> new_nodes;
    new_nodes.reserve(out.allocation.tasks.size());
    for (const auto& t : out.allocation.tasks) new_nodes.push_back(t.nodes);
    ResolveOutcome rr;
    out.predicted_total =
        evaluate_objective(tasks, new_nodes, options_.objective) +
        options_.run.sync_overhead;
    rr.incumbent_predicted =
        evaluate_objective(tasks, inc_nodes, options_.objective) +
        options_.run.sync_overhead;
    rr.solution = std::move(out);
    return rr;
  }

  double migration_cost(const SolveOutcome& from,
                        const SolveOutcome& to) const override {
    (void)from;  // the runner compares against the installed layout
    return runner_->machine().migration_seconds(
        runner_->migration_volume(to.allocation));
  }

  double apply_allocation(const SolveOutcome& solution) override {
    const double stall =
        runner_->migrate(runner_->migration_volume(solution.allocation));
    runner_->install(solution.allocation);
    return stall;
  }

  double finish_epochs() override {
    hslb_ = runner_->finish();
    const std::size_t dlb_groups =
        options_.dlb_groups == 0 ? sys_.num_fragments() : options_.dlb_groups;
    dlb_ = run_dlb(sys_, cost_, GroupLayout::uniform(nodes_, dlb_groups),
                   options_.run);
    return hslb_.scc_seconds;
  }

  // -- BaselineReporter -------------------------------------------------
  double hslb_total_seconds() override { return hslb_.total_seconds; }
  double dlb_total_seconds() override { return dlb_.total_seconds; }

  // Substrate-specific outputs copied into PipelineResult by run_pipeline.
  double predicted_scc_seconds_ = 0.0;
  DimerPredictions dimer_predictions_;
  double dimer_min_r2_ = 1.0;
  ExecutionResult hslb_;
  ExecutionResult dlb_;
  std::vector<SolverStats> resolve_stats_;
  bool seed_accepted_ = false;

  const std::vector<double>& last_x() const { return last_x_; }
  const std::vector<minlp::Cut>& last_pool() const { return last_pool_; }
  const std::vector<double>& last_fit_params() const {
    return last_fit_params_;
  }

 private:
  /// Extends each fragment's fitted model with pinned machine terms: comm
  /// slope 1/bandwidth over the fragment's replicated halo volume (halo_gb
  /// per SCF neighbour, matching the runtime's charge), and the working
  /// set against node memory capacity. A no-op on unmodeled machines
  /// (infinite bandwidth/memory), so compute-only configurations keep the
  /// pre-refactor models bit-identically.
  void add_machine_terms(std::vector<BudgetTask>& tasks) const {
    if (!options_.machine_cost_terms) return;
    const sim::Machine mach = machine();
    if (!mach.models_communication() && !mach.models_memory()) return;
    const auto pairs = sys_.scf_neighbor_counts();
    for (std::size_t f = 0; f < tasks.size(); ++f) {
      const auto& frag = sys_.fragments[f];
      if (mach.models_communication() && frag.halo_gb > 0.0) {
        tasks[f].model.add(perf::make_comm_term(
            frag.halo_gb * static_cast<double>(pairs[f]),
            1.0 / mach.link_gb_per_s));
      }
      if (mach.models_memory() && frag.memory_gb > 0.0) {
        tasks[f].model.add(perf::make_memory_term(
            frag.memory_gb, mach.memory_gb_per_node, mach.page_s_per_gb));
      }
    }
  }

  /// One noise draw derived from (stream, node count, repetition).
  double noisy(double true_seconds, std::size_t stream, long long n,
               std::uint64_t rep) const {
    const std::uint64_t seed = derive_seed(
        derive_seed(options_.seed, stream),
        static_cast<std::uint64_t>(n) * 4096 + rep);
    sim::NoiseModel noise(options_.bench_noise_cv, seed);
    return noise.perturb(true_seconds);
  }

  // Steps 1b/2b: probe and fit a representative dimer subset, then scale
  // every dimer's model from the nearest probed size.
  void probe_and_fit_dimers() {
    if (options_.dimer_probe_count == 0 || sys_.scf_dimers.empty()) return;
    // Pick probes spread across the combined-size range.
    std::vector<std::size_t> by_size(sys_.scf_dimers.size());
    for (std::size_t d = 0; d < by_size.size(); ++d) by_size[d] = d;
    auto size_of = [&](std::size_t d) {
      return sys_.fragments[sys_.scf_dimers[d].i].basis_functions +
             sys_.fragments[sys_.scf_dimers[d].j].basis_functions;
    };
    std::sort(by_size.begin(), by_size.end(), [&](std::size_t a, std::size_t b) {
      return size_of(a) < size_of(b);
    });
    std::vector<std::size_t> probes;
    const std::size_t want =
        std::min(options_.dimer_probe_count, sys_.scf_dimers.size());
    for (std::size_t k = 0; k < want; ++k) {
      const auto pos = want == 1 ? 0 : k * (by_size.size() - 1) / (want - 1);
      if (probes.empty() || probes.back() != by_size[pos])
        probes.push_back(by_size[pos]);
    }

    // Probe + fit each selected dimer at the same node counts (independent
    // per dimer, so this parallelizes like the monomer Gather/Fit stages).
    struct Probed {
      double nbf;
      perf::Model model;
      double r2;
    };
    std::vector<Probed> fitted(probes.size());
    parallel_for(options_.threads, probes.size(), [&](std::size_t k) {
      const std::size_t d = probes[k];
      const auto& pair = sys_.scf_dimers[d];
      const auto true_model =
          cost_.dimer(sys_.fragments[pair.i], sys_.fragments[pair.j]);
      perf::SampleSet samples;
      for (long long n : counts_) {
        for (std::uint64_t rep = 0; rep < options_.repetitions; ++rep) {
          samples.push_back(
              {static_cast<double>(n),
               noisy(true_model.eval(static_cast<double>(n)),
                     names_.size() + d, n, rep)});
        }
      }
      const auto fit = perf::fit(samples, options_.fit);
      fitted[k] = Probed{static_cast<double>(size_of(d)), fit.model, fit.r2};
    });
    for (const auto& p : fitted)
      dimer_min_r2_ = std::min(dimer_min_r2_, p.r2);

    // Scale every dimer's model from the nearest probed size: SCF work
    // grows ~ nbf^3 (a, d) and communication ~ nbf^2 (b).
    dimer_predictions_.models.resize(sys_.scf_dimers.size());
    for (std::size_t d = 0; d < sys_.scf_dimers.size(); ++d) {
      const double s = static_cast<double>(size_of(d));
      const Probed* nearest = &fitted.front();
      for (const auto& p : fitted) {
        if (std::fabs(p.nbf - s) < std::fabs(nearest->nbf - s)) nearest = &p;
      }
      const double work_ratio = std::pow(s / nearest->nbf, 3.0);
      const double comm_ratio = std::pow(s / nearest->nbf, 2.0);
      perf::Model m = nearest->model;
      m.a *= work_ratio;
      m.d *= work_ratio;
      m.b *= comm_ratio;
      dimer_predictions_.models[d] = m;
    }
  }

  const System& sys_;
  const CostModel& cost_;
  long long nodes_;
  const PipelineOptions& options_;
  long long hi_ = 0;
  std::vector<long long> counts_;
  std::vector<perf::Model> truth_;
  std::vector<std::string> names_;
  std::unordered_map<std::string, std::size_t> index_of_;
  // Closed-loop state.
  std::unique_ptr<EpochRunner> runner_;
  std::vector<double> last_x_;         ///< previous MINLP optimum
  std::vector<minlp::Cut> last_pool_;  ///< previous solve's cut pool
  std::vector<double> last_fit_params_;
};

}  // namespace

std::shared_ptr<Application> make_application(System sys, CostModel cost,
                                              long long nodes,
                                              PipelineOptions options) {
  HSLB_EXPECTS(nodes >= static_cast<long long>(sys.num_fragments()));
  HSLB_EXPECTS(options.fit_points >= 2);
  // FmoApplication holds const references; the aliasing shared_ptr keeps
  // one State alive that owns both the referenced inputs and the app.
  struct State {
    System sys;
    CostModel cost;
    PipelineOptions options;
    FmoApplication app;
    State(System s, CostModel c, long long n, PipelineOptions o)
        : sys(std::move(s)),
          cost(std::move(c)),
          options(std::move(o)),
          app(sys, cost, n, options) {}
  };
  auto state =
      std::make_shared<State>(std::move(sys), std::move(cost), nodes,
                              std::move(options));
  return std::shared_ptr<Application>(state, &state->app);
}

PipelineResult run_pipeline(const System& sys, const CostModel& cost,
                            long long nodes, const PipelineOptions& options) {
  HSLB_EXPECTS(nodes >= static_cast<long long>(sys.num_fragments()));
  HSLB_EXPECTS(options.fit_points >= 2);

  FmoApplication app(sys, cost, nodes, options);
  hslb::PipelineOptions engine_options;
  engine_options.threads = options.threads;
  engine_options.gather_repetitions = options.repetitions;
  engine_options.rebalance = options.rebalance;
  auto run = Pipeline(engine_options).run(app);

  PipelineResult out;
  out.bench = std::move(run.bench);
  out.fits = std::move(run.fits);
  out.allocation = std::move(run.solution.allocation);
  out.min_r2 = 1.0;
  double r2_sum = 0.0;
  for (const auto& [name, fit] : out.fits) {
    out.min_r2 = std::min(out.min_r2, fit.r2);
    r2_sum += fit.r2;
  }
  out.mean_r2 = r2_sum / static_cast<double>(out.fits.size());
  out.predicted_scc_seconds = app.predicted_scc_seconds_;
  out.dimer_predictions = std::move(app.dimer_predictions_);
  out.dimer_min_r2 = app.dimer_min_r2_;
  out.hslb = std::move(app.hslb_);
  out.dlb = std::move(app.dlb_);
  out.report = std::move(run.report);
  out.resolve_stats = std::move(app.resolve_stats_);
  out.seed_accepted = app.seed_accepted_;
  if (options.solve_with_minlp) {
    // Export what the search learned so a later run can start warm (the
    // allocation service caches this next to the allocation). Node counts
    // come from the final allocation, in task order.
    for (const auto& t : out.allocation.tasks)
      out.solve_export.nodes_by_task.push_back(t.nodes);
    out.solve_export.x = app.last_x();
    out.solve_export.cuts = app.last_pool();
    out.solve_export.fit_params = app.last_fit_params();
  }
  return out;
}

}  // namespace hslb::fmo
