#include "fmo/molecule.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <numbers>
#include <unordered_map>
#include <vector>

#include "common/contracts.hpp"
#include "common/rng.hpp"
#include "common/strings.hpp"

namespace hslb::fmo {

namespace {

double distance(const std::array<double, 3>& a, const std::array<double, 3>& b) {
  double acc = 0.0;
  for (int k = 0; k < 3; ++k) acc += (a[k] - b[k]) * (a[k] - b[k]);
  return std::sqrt(acc);
}

/// Builds the SCF/ES dimer lists from fragment centroids and a cutoff.
///
/// Cell-grid neighbor search: with cells no smaller than the cutoff, every
/// pair within range sits in the same or an adjacent cell (index difference
/// at most one per axis), so each fragment tests only its 27-cell
/// neighborhood instead of all later fragments — O(n) for lattice-like
/// geometries against the O(n^2) scan this replaces. Candidates are sorted
/// ascending per anchor and tested with the same distance expression, so
/// the emitted scf_dimers list is identical to the all-pairs loop's.
void build_dimers(System& sys, double cutoff) {
  const std::size_t n = sys.fragments.size();
  sys.scf_dimers.clear();
  sys.es_dimers = 0;
  if (n < 2) return;

  std::array<double, 3> lo = sys.fragments[0].center;
  for (const auto& f : sys.fragments)
    for (int k = 0; k < 3; ++k) lo[k] = std::min(lo[k], f.center[k]);
  const double cell = std::max(cutoff, 1e-9);
  auto cell_of = [&](const std::array<double, 3>& c) {
    std::array<long long, 3> idx;
    for (int k = 0; k < 3; ++k)
      idx[k] = static_cast<long long>(std::floor((c[k] - lo[k]) / cell));
    return idx;
  };
  auto cell_key = [](const std::array<long long, 3>& idx) {
    // 21 bits per axis: keys are unique (and the -1 neighbor probes cannot
    // alias a real cell) until an extent reaches 2^21 cells per side, far
    // past anything the generators here produce.
    return (static_cast<std::uint64_t>(idx[0] & 0x1fffff) << 42) |
           (static_cast<std::uint64_t>(idx[1] & 0x1fffff) << 21) |
           static_cast<std::uint64_t>(idx[2] & 0x1fffff);
  };

  std::unordered_map<std::uint64_t, std::vector<std::size_t>> grid;
  grid.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    grid[cell_key(cell_of(sys.fragments[i].center))].push_back(i);

  std::vector<std::size_t> cand;
  for (std::size_t i = 0; i < n; ++i) {
    const auto ci = cell_of(sys.fragments[i].center);
    cand.clear();
    for (long long dx = -1; dx <= 1; ++dx)
      for (long long dy = -1; dy <= 1; ++dy)
        for (long long dz = -1; dz <= 1; ++dz) {
          const auto it =
              grid.find(cell_key({ci[0] + dx, ci[1] + dy, ci[2] + dz}));
          if (it == grid.end()) continue;
          for (std::size_t j : it->second)
            if (j > i) cand.push_back(j);
        }
    std::sort(cand.begin(), cand.end());
    for (std::size_t j : cand) {
      const double d =
          distance(sys.fragments[i].center, sys.fragments[j].center);
      if (d <= cutoff) sys.scf_dimers.push_back({i, j, d});
    }
  }
  // Every pair not near enough for an SCF dimer interacts electrostatically.
  sys.es_dimers = n * (n - 1) / 2 - sys.scf_dimers.size();
}

}  // namespace

System water_cluster(const WaterClusterOptions& options) {
  HSLB_EXPECTS(options.fragments >= 1);
  HSLB_EXPECTS(options.merge_fraction >= 0.0 && options.merge_fraction <= 1.0);
  Rng rng(options.seed);
  System sys;
  sys.name = strings::format("water_cluster_%zu", options.fragments);

  // Lay fragments out on a cubic lattice with jitter; side chosen to hold
  // all fragments.
  const auto side = static_cast<std::size_t>(
      std::ceil(std::cbrt(static_cast<double>(options.fragments))));
  const double spacing = 3.0;  // Angstrom, typical O...O distance ~2.8-3.0

  for (std::size_t f = 0; f < options.fragments; ++f) {
    Fragment frag;
    frag.id = f;
    // Merge some fragments into 2- or 3-water units for size diversity.
    int waters = 1;
    if (rng.uniform() < options.merge_fraction)
      waters = static_cast<int>(rng.uniform_int(2, 3));
    frag.atoms = 3 * waters;
    frag.basis_functions = 25 * waters;  // ~25 bf per water (6-31G*-like)
    frag.name = strings::format("w%zu(x%d)", f, waters);
    const std::size_t ix = f % side;
    const std::size_t iy = (f / side) % side;
    const std::size_t iz = f / (side * side);
    frag.center = {spacing * static_cast<double>(ix) + rng.uniform(-0.4, 0.4),
                   spacing * static_cast<double>(iy) + rng.uniform(-0.4, 0.4),
                   spacing * static_cast<double>(iz) + rng.uniform(-0.4, 0.4)};
    sys.fragments.push_back(std::move(frag));
  }
  build_dimers(sys, options.scf_cutoff_angstrom);
  return sys;
}

System comm_cluster(const CommClusterOptions& options) {
  HSLB_EXPECTS(options.halo_gb_per_100bf >= 0.0);
  HSLB_EXPECTS(options.memory_gb_per_100bf >= 0.0);
  System sys = water_cluster({.fragments = options.fragments,
                              .merge_fraction = options.merge_fraction,
                              .scf_cutoff_angstrom = options.scf_cutoff_angstrom,
                              .seed = options.seed});
  sys.name = strings::format("comm_cluster_%zu", options.fragments);
  for (auto& f : sys.fragments) {
    const double size = static_cast<double>(f.basis_functions) / 100.0;
    f.halo_gb = options.halo_gb_per_100bf * size;
    f.memory_gb = options.memory_gb_per_100bf * size;
  }
  return sys;
}

System polypeptide(const PolypeptideOptions& options) {
  HSLB_EXPECTS(options.residues >= 1);
  Rng rng(options.seed);
  System sys;
  sys.name = strings::format("polypeptide_%zu", options.residues);

  // Coiled backbone: helix with ~1.5 A rise and 5 residues per turn.
  const double rise = 1.5, radius = 2.3;
  for (std::size_t r = 0; r < options.residues; ++r) {
    Fragment frag;
    frag.id = r;
    // Residue sizes from glycine (7 heavy+H atoms, ~40 bf) to tryptophan
    // (~27 atoms, ~180 bf): large size diversity.
    const double size_draw = rng.uniform();
    frag.atoms = static_cast<int>(7 + size_draw * 20);
    frag.basis_functions = static_cast<int>(40 + size_draw * 140);
    frag.name = strings::format("res%zu", r);
    const double theta =
        2.0 * std::numbers::pi * static_cast<double>(r) / 5.0;
    frag.center = {radius * std::cos(theta), radius * std::sin(theta),
                   rise * static_cast<double>(r)};
    sys.fragments.push_back(std::move(frag));
  }
  build_dimers(sys, options.scf_cutoff_angstrom);
  return sys;
}

}  // namespace hslb::fmo
