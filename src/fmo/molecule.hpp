// Synthetic molecular system generators.
//
// The SC 2012 evaluation ran water clusters and protein-like systems on
// Intrepid; the actual geometries are not available, so these generators
// build systems with the same *scheduling-relevant* structure: fragment
// counts, heterogeneous fragment sizes (merged multi-water fragments /
// residues of different sizes), and distance-based SCF-dimer lists
// (see DESIGN.md, substitution table).
#pragma once

#include <cstdint>

#include "fmo/fragment.hpp"

namespace hslb::fmo {

struct WaterClusterOptions {
  std::size_t fragments = 64;
  /// Fraction of fragments merged into 2- or 3-water "large" fragments
  /// (size heterogeneity; 0 = uniform single waters).
  double merge_fraction = 0.3;
  /// Centroid distance below which a pair becomes a full SCF dimer.
  double scf_cutoff_angstrom = 4.5;
  std::uint64_t seed = 1;
};

/// Water cluster on a jittered cubic lattice (~3 A spacing); a water
/// monomer has 3 atoms and ~25 basis functions (6-31G*-like).
System water_cluster(const WaterClusterOptions& options = {});

struct PolypeptideOptions {
  std::size_t residues = 64;
  /// One fragment per residue; residue sizes drawn from a glycine..tryptophan
  /// -like range, giving larger size diversity than water.
  double scf_cutoff_angstrom = 6.0;
  std::uint64_t seed = 2;
};

/// Protein-like chain: fragments along a coiled backbone; sequential and
/// i/i+2 neighbours fall inside the SCF dimer cutoff.
System polypeptide(const PolypeptideOptions& options = {});

struct CommClusterOptions {
  std::size_t fragments = 32;
  double merge_fraction = 0.3;
  /// Generous cutoff so each fragment has many SCF neighbours — the dense
  /// dimer graph that makes halo exchange dominate.
  double scf_cutoff_angstrom = 6.5;
  /// Halo volume per neighbour pair, GB per 100 basis functions; each
  /// fragment's halo_gb scales with its own size (bigger fragments ship
  /// bigger density blocks).
  double halo_gb_per_100bf = 0.02;
  /// Working-set GB per 100 basis functions (integral + density storage),
  /// stressing per-node memory when a fragment runs on few nodes.
  double memory_gb_per_100bf = 1.0;
  std::uint64_t seed = 7;
};

/// Communication-dominated scenario family: a water cluster whose
/// fragments carry explicit halo and working-set footprints. Benchmark
/// probes run fragments in isolation (no neighbours exchanging), so a
/// compute-only model fits the probes perfectly yet over-allocates in
/// production, where every extra node multiplies halo traffic — the regime
/// where the extended cost model measurably wins (bench/comm_model).
System comm_cluster(const CommClusterOptions& options = {});

}  // namespace hslb::fmo
