// Ground-truth cost model for simulated FMO fragment calculations.
//
// Plays the role GAMESS-on-Intrepid plays in the title paper: given a
// fragment and a group size, it defines the *true* wall-clock time of one
// monomer SCF (per SCC iteration) or one dimer SCF. The functional family
// is the paper's own performance model,
//
//     T(n) = a/n + b n^c + d,
//
// with coefficients derived from fragment size: SCF work scales as
// O(nbf^3) (Fock build + diagonalization), the serial remainder and the
// communication term grow with nbf^2. The Gather step observes these times
// through a noise model; HSLB must then re-discover good allocations
// without access to the ground truth.
#pragma once

#include "fmo/fragment.hpp"
#include "perf/model.hpp"

namespace hslb::fmo {

struct CostModelOptions {
  /// Seconds per basis-function-cubed on one node (sets the overall scale;
  /// default calibrated so a single water monomer SCF iteration ~ 0.3 s).
  double seconds_per_nbf3 = 2.0e-5;
  /// Fraction of single-node work that parallelizes perfectly (the a/n term).
  double parallel_fraction = 0.985;
  /// Fraction of single-node work that is serial (the d term).
  double serial_fraction = 0.004;
  /// Communication coefficient: b = comm_per_nbf2 * nbf^2, with exponent c.
  double comm_per_nbf2 = 2.0e-9;
  double comm_exponent = 1.15;
  /// Dimer SCF discount: dimers start from converged monomer densities and
  /// need fewer iterations.
  double dimer_work_factor = 0.4;
  /// Seconds per ES-approximated dimer on one node (cheap, embarrassingly
  /// parallel across the whole partition).
  double es_dimer_seconds = 1.0e-4;
};

class CostModel {
 public:
  explicit CostModel(CostModelOptions options = {});

  /// True performance model of one monomer SCF iteration of `f`.
  perf::Model monomer(const Fragment& f) const;

  /// True performance model of a full dimer SCF of the pair (i, j).
  perf::Model dimer(const Fragment& i, const Fragment& j) const;

  /// Aggregate ES-dimer seconds for the whole system when spread over
  /// `nodes` nodes.
  double es_dimer_time(const System& sys, long long nodes) const;

  const CostModelOptions& options() const { return opt_; }

 private:
  perf::Model from_work(double single_node_seconds, double nbf) const;
  CostModelOptions opt_;
};

}  // namespace hslb::fmo
