#include "fmo/gddi.hpp"

#include "common/contracts.hpp"

namespace hslb::fmo {

long long GroupLayout::total_nodes() const {
  long long t = 0;
  for (long long s : sizes) t += s;
  return t;
}

GroupLayout GroupLayout::uniform(long long nodes, std::size_t groups) {
  HSLB_EXPECTS(nodes >= 1);
  HSLB_EXPECTS(groups >= 1);
  HSLB_EXPECTS(static_cast<long long>(groups) <= nodes);
  GroupLayout layout;
  const long long base = nodes / static_cast<long long>(groups);
  long long rem = nodes % static_cast<long long>(groups);
  for (std::size_t g = 0; g < groups; ++g) {
    layout.sizes.push_back(base + (rem > 0 ? 1 : 0));
    if (rem > 0) --rem;
  }
  return layout;
}

}  // namespace hslb::fmo
