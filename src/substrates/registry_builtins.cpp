#include "substrates/registry_builtins.hpp"

#include <cmath>
#include <memory>
#include <stdexcept>
#include <string>

#include "amrex/workload.hpp"
#include "cesm/pipeline.hpp"
#include "common/contracts.hpp"
#include "fmm/workload.hpp"
#include "fmo/driver.hpp"
#include "fmo/scenario.hpp"
#include "hslb/registry.hpp"
#include "hslb/waveapp.hpp"

namespace hslb::substrates {

namespace {

bool machine_extended(const ScenarioSpec& spec) {
  return std::isfinite(spec.link_gb_per_s) ||
         std::isfinite(spec.memory_gb_per_node);
}

sim::Machine extended_machine(const ScenarioSpec& spec, long long nodes) {
  auto mach = sim::Machine::intrepid_partition(static_cast<std::size_t>(nodes));
  mach.link_gb_per_s = spec.link_gb_per_s;
  mach.memory_gb_per_node = spec.memory_gb_per_node;
  mach.page_s_per_gb = spec.page_s_per_gb;
  return mach;
}

std::shared_ptr<Application> make_fmo(const ScenarioSpec& spec) {
  const long long fragments = spec.tasks > 0 ? spec.tasks : 24;
  const long long nodes = spec.nodes > 0 ? spec.nodes : 16 * fragments;
  auto sys = fmo::make_system(spec.variant,
                              static_cast<std::size_t>(fragments),
                              spec.system_seed);

  fmo::PipelineOptions opt;
  opt.fit_points = static_cast<std::size_t>(spec.fit_points);
  opt.bench_noise_cv = spec.bench_noise_cv;
  opt.seed = spec.bench_seed;
  opt.objective = spec.objective;
  opt.solve_with_minlp = spec.minlp;
  opt.run.noise_cv = spec.noise_cv;
  opt.run.seed = spec.run_seed;
  opt.run.straggler_cv = spec.straggler_cv;
  opt.run.fail_node = spec.fail_node;
  opt.run.fail_time = spec.fail_time;
  opt.run.fail_downtime = spec.fail_downtime;
  if (machine_extended(spec)) opt.run.machine = extended_machine(spec, nodes);
  opt.rebalance = spec.rebalance;
  return fmo::make_application(std::move(sys), fmo::CostModel{}, nodes,
                               std::move(opt));
}

cesm::Layout cesm_layout(const std::string& variant) {
  if (variant.empty() || variant == "layout1") return cesm::Layout::Hybrid;
  if (variant == "layout2") return cesm::Layout::SequentialAtmGroup;
  if (variant == "layout3") return cesm::Layout::FullySequential;
  throw std::invalid_argument("unknown cesm variant '" + variant +
                              "' (known: layout1, layout2, layout3)");
}

std::shared_ptr<Application> make_cesm(const ScenarioSpec& spec) {
  const long long nodes = spec.nodes > 0 ? spec.nodes : 128;

  cesm::PipelineOptions opt;
  opt.layout = cesm_layout(spec.variant);
  opt.fit_points = static_cast<std::size_t>(spec.fit_points);
  opt.sim.noise_cv = spec.noise_cv;
  opt.sim.seed = spec.run_seed;
  opt.straggler_cv = spec.straggler_cv;
  opt.fail_node = spec.fail_node;
  opt.fail_time = spec.fail_time;
  opt.fail_downtime = spec.fail_downtime;
  opt.link_gb_per_s = spec.link_gb_per_s;
  opt.rebalance = spec.rebalance;
  return cesm::make_application(cesm::Resolution::Deg1, nodes, std::move(opt));
}

WaveOptions wave_options(const ScenarioSpec& spec, long long nodes) {
  WaveOptions opt;
  opt.fit_points = spec.fit_points;
  opt.bench_noise_cv = spec.bench_noise_cv;
  opt.bench_seed = spec.bench_seed;
  opt.objective = spec.objective;
  opt.solve_with_minlp = spec.minlp;
  opt.noise_cv = spec.noise_cv;
  opt.seed = spec.run_seed;
  opt.straggler_cv = spec.straggler_cv;
  opt.fail_node = spec.fail_node;
  opt.fail_time = spec.fail_time;
  opt.fail_downtime = spec.fail_downtime;
  if (machine_extended(spec)) opt.machine = extended_machine(spec, nodes);
  return opt;
}

std::shared_ptr<Application> make_fmm(const ScenarioSpec& spec) {
  fmm::TreeOptions tree;
  if (!spec.variant.empty()) tree.variant = spec.variant;
  if (spec.tasks > 0) tree.tasks = spec.tasks;
  tree.seed = spec.system_seed;
  auto wl = fmm::tree_workload(tree);

  const long long nodes = spec.nodes > 0 ? spec.nodes : 8 * tree.tasks;
  return std::make_shared<WaveApplication>(std::move(wl), nodes,
                                           wave_options(spec, nodes));
}

std::shared_ptr<Application> make_amrex(const ScenarioSpec& spec) {
  amrex::MeshOptions mesh;
  if (!spec.variant.empty()) mesh.variant = spec.variant;
  if (spec.tasks > 0) mesh.blocks = spec.tasks;
  mesh.seed = spec.system_seed;
  auto wl = amrex::mesh_workload(mesh);

  const long long nodes = spec.nodes > 0 ? spec.nodes : 8 * mesh.blocks;
  return std::make_shared<WaveApplication>(std::move(wl), nodes,
                                           wave_options(spec, nodes));
}

}  // namespace

void register_builtin_substrates() {
  static const bool registered = [] {
    auto& reg = SubstrateRegistry::instance();
    reg.add({"fmo",
             "FMO fragment SCF waves (the paper's substrate)",
             fmo::system_variants()},
            &make_fmo);
    reg.add({"cesm",
             "CESM coupled climate components at 1 degree",
             {"layout1", "layout2", "layout3"}},
            &make_cesm);
    reg.add({"fmm",
             "FMM-style adaptive octree traversal (lbcost-weighted subtrees)",
             {"uniform", "adaptive"}},
            &make_fmm);
    reg.add({"amrex",
             "AMReX-style mesh+particle steps (fluid + clustered particles)",
             {"uniform", "clustered"}},
            &make_amrex);
    return true;
  }();
  (void)registered;
}

}  // namespace hslb::substrates
