// Registers every built-in substrate (fmo, cesm, fmm, amrex) with the
// process-wide hslb::SubstrateRegistry. Idempotent; call once from any
// entry point (the CLI, benches, tests, the fuzzer) before looking
// substrates up by name.
#pragma once

namespace hslb::substrates {

void register_builtin_substrates();

}  // namespace hslb::substrates
