// CESM example: load-balance a coupled climate run with HSLB.
//
//   $ ./build/examples/cesm_layout [nodes] [layout 1|2|3] [resolution 1|8]
//
// Runs the four pipeline steps for the chosen configuration, prints the
// component allocation next to the paper's Figure-1 layout sketch, and
// renders the Execute step's actual runtime trace as a Gantt chart.
#include <cstdio>
#include <cstdlib>

#include "cesm/pipeline.hpp"
#include "common/table.hpp"

int main(int argc, char** argv) {
  using namespace hslb;
  using namespace hslb::cesm;

  const long long nodes = argc > 1 ? std::atoll(argv[1]) : 1024;
  const auto layout =
      static_cast<Layout>(argc > 2 ? std::atoi(argv[2]) : 1);
  const Resolution res = (argc > 3 && std::atoi(argv[3]) == 8)
                             ? Resolution::EighthDeg
                             : Resolution::Deg1;

  std::printf("CESM %s, %s, %lld nodes\n\n", to_string(res), to_string(layout),
              nodes);

  cesm::PipelineOptions opt;
  opt.layout = layout;
  // A handful of coupling intervals keeps the Gantt chart readable; the
  // CLI's default run uses 24 (one simulated day at hourly coupling).
  opt.coupling_intervals = 4;
  const auto result = run_pipeline(res, nodes, opt);

  Table t({"component", "nodes", "fit R^2", "predicted s", "actual s"});
  for (Component c : kComponents) {
    const auto i = index(c);
    t.add_row({to_string(c),
               Table::num(static_cast<long long>(result.solution.nodes[i])),
               Table::num(result.fits[i].r2, 4),
               Table::num(result.solution.predicted_seconds[i], 2),
               Table::num(result.actual_seconds[i], 2)});
  }
  std::printf("%s\n", t.str().c_str());
  std::printf("total: predicted %.2f s, actual %.2f s "
              "(solver: %zu nodes, %.3f s, proven optimal)\n\n",
              result.solution.predicted_total, result.actual_total,
              result.solution.stats.nodes, result.solution.stats.seconds);

  // The executed schedule, straight from the runtime: one trace event per
  // component per coupling interval on the machine the solver laid out.
  const sim::Trace& trace = result.coupled.trace;
  std::printf("executed schedule on %s (%d coupling intervals):\n%s\n",
              result.report.machine.c_str(), opt.coupling_intervals,
              trace.gantt().c_str());
  std::printf("makespan %.2f s, machine efficiency %.2f, node imbalance %.2f\n",
              trace.makespan(), trace.efficiency(), trace.imbalance());
  return 0;
}
