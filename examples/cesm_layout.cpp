// CESM example: load-balance a coupled climate run with HSLB.
//
//   $ ./build/examples/cesm_layout [nodes] [layout 1|2|3] [resolution 1|8]
//
// Runs the four pipeline steps for the chosen configuration, prints the
// component allocation next to the paper's Figure-1 layout sketch, and
// renders the executed schedule as a Gantt chart using the discrete-event
// task-graph simulator.
#include <cstdio>
#include <cstdlib>

#include "cesm/pipeline.hpp"
#include "common/table.hpp"
#include "sim/taskgraph.hpp"

namespace {

using namespace hslb;
using namespace hslb::cesm;

/// Builds the task graph realizing layout (1)-(3) at the given allocation
/// and component times.
sim::TaskGraph to_taskgraph(Layout layout, long long total_nodes,
                            const std::array<long long, 4>& nodes,
                            const std::array<double, 4>& seconds) {
  sim::TaskGraph g(static_cast<std::size_t>(total_nodes));
  const auto lnd = static_cast<std::size_t>(nodes[index(Component::Lnd)]);
  const auto ice = static_cast<std::size_t>(nodes[index(Component::Ice)]);
  const auto atm = static_cast<std::size_t>(nodes[index(Component::Atm)]);
  const auto ocn = static_cast<std::size_t>(nodes[index(Component::Ocn)]);
  const double t_lnd = seconds[index(Component::Lnd)];
  const double t_ice = seconds[index(Component::Ice)];
  const double t_atm = seconds[index(Component::Atm)];
  const double t_ocn = seconds[index(Component::Ocn)];
  switch (layout) {
    case Layout::Hybrid: {
      // ice || lnd inside atm's block; atm after both; ocn concurrent.
      const auto i = g.add_task("ice", t_ice, {0, ice});
      const auto l = g.add_task("lnd", t_lnd, {ice, lnd});
      g.add_task("atm", t_atm, {0, atm}, {i, l});
      g.add_task("ocn", t_ocn, {atm, ocn});
      break;
    }
    case Layout::SequentialAtmGroup: {
      const std::size_t rest = static_cast<std::size_t>(total_nodes) - ocn;
      const auto i = g.add_task("ice", t_ice, {0, std::min(ice, rest)});
      const auto l = g.add_task("lnd", t_lnd, {0, std::min(lnd, rest)}, {i});
      g.add_task("atm", t_atm, {0, std::min(atm, rest)}, {l});
      g.add_task("ocn", t_ocn, {rest, ocn});
      break;
    }
    case Layout::FullySequential: {
      const auto i = g.add_task("ice", t_ice, {0, ice});
      const auto l = g.add_task("lnd", t_lnd, {0, lnd}, {i});
      const auto a = g.add_task("atm", t_atm, {0, atm}, {l});
      g.add_task("ocn", t_ocn, {0, ocn}, {a});
      break;
    }
  }
  return g;
}

}  // namespace

int main(int argc, char** argv) {
  const long long nodes = argc > 1 ? std::atoll(argv[1]) : 1024;
  const auto layout =
      static_cast<Layout>(argc > 2 ? std::atoi(argv[2]) : 1);
  const Resolution res = (argc > 3 && std::atoi(argv[3]) == 8)
                             ? Resolution::EighthDeg
                             : Resolution::Deg1;

  std::printf("CESM %s, %s, %lld nodes\n\n", to_string(res), to_string(layout),
              nodes);

  cesm::PipelineOptions opt;
  opt.layout = layout;
  const auto result = run_pipeline(res, nodes, opt);

  Table t({"component", "nodes", "fit R^2", "predicted s", "actual s"});
  for (Component c : kComponents) {
    const auto i = index(c);
    t.add_row({to_string(c),
               Table::num(static_cast<long long>(result.solution.nodes[i])),
               Table::num(result.fits[i].r2, 4),
               Table::num(result.solution.predicted_seconds[i], 2),
               Table::num(result.actual_seconds[i], 2)});
  }
  std::printf("%s\n", t.str().c_str());
  std::printf("total: predicted %.2f s, actual %.2f s "
              "(solver: %zu nodes, %.3f s, proven optimal)\n\n",
              result.solution.predicted_total, result.actual_total,
              result.solution.stats.nodes, result.solution.stats.seconds);

  const auto graph =
      to_taskgraph(layout, nodes, result.solution.nodes, result.actual_seconds);
  const auto schedule = graph.run();
  std::printf("executed schedule (width = node range, bars = time):\n%s\n",
              graph.gantt(schedule).c_str());
  std::printf("makespan %.2f s, machine efficiency %.2f, node imbalance %.2f\n",
              schedule.makespan, schedule.efficiency(), schedule.imbalance());
  return 0;
}
