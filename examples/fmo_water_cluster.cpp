// FMO example: schedule a fragment-molecular-orbital calculation of a
// heterogeneous water cluster with HSLB, and compare against the stock
// GDDI dynamic load balancer.
//
//   $ ./build/examples/fmo_water_cluster [fragments] [nodes]
//
// This is the title paper's scenario: few large tasks of diverse size on a
// partition with many more nodes than tasks.
#include <cstdio>
#include <cstdlib>

#include "common/table.hpp"
#include "fmo/driver.hpp"

int main(int argc, char** argv) {
  using namespace hslb;
  using namespace hslb::fmo;

  const std::size_t fragments =
      argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 48;
  const long long nodes = argc > 2 ? std::atoll(argv[2])
                                   : static_cast<long long>(fragments) * 32;

  const auto sys = water_cluster({.fragments = fragments, .merge_fraction = 0.4,
                                  .scf_cutoff_angstrom = 4.5, .seed = 11});
  CostModel cost;

  std::printf("FMO2 water cluster: %zu fragments (%lld total basis functions,\n"
              "size diversity %.1fx), %zu SCF dimers + %zu ES dimers,\n"
              "on %lld simulated Blue Gene/P nodes\n\n",
              sys.num_fragments(), sys.total_basis_functions(),
              sys.size_diversity(), sys.scf_dimers.size(), sys.es_dimers,
              nodes);

  const auto res = run_pipeline(sys, cost, nodes);

  std::printf("fits: mean R^2 %.4f (min %.4f) across %zu fragments\n\n",
              res.mean_r2, res.min_r2, res.fits.size());

  // Show the five largest and smallest allocations.
  auto sorted = res.allocation.tasks;
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& a, const auto& b) { return a.nodes > b.nodes; });
  Table t({"fragment", "group nodes", "predicted monomer s"});
  t.set_title("HSLB group sizes (largest and smallest five)");
  for (std::size_t i = 0; i < std::min<std::size_t>(5, sorted.size()); ++i)
    t.add_row({sorted[i].task, Table::num(sorted[i].nodes),
               Table::num(sorted[i].predicted_seconds, 4)});
  t.add_rule();
  for (std::size_t i = sorted.size() - std::min<std::size_t>(5, sorted.size());
       i < sorted.size(); ++i)
    t.add_row({sorted[i].task, Table::num(sorted[i].nodes),
               Table::num(sorted[i].predicted_seconds, 4)});
  std::printf("%s\n", t.str().c_str());

  Table cmp({"scheduler", "SCC loop s", "dimer phase s", "total s",
             "efficiency", "group imbalance"});
  cmp.add_row({"DLB (equal groups)", Table::num(res.dlb.scc_seconds, 3),
               Table::num(res.dlb.dimer_seconds, 3),
               Table::num(res.dlb.total_seconds, 3),
               Table::num(res.dlb.efficiency(nodes), 3),
               Table::num(res.dlb.group_imbalance(), 3)});
  cmp.add_row({"HSLB (static)", Table::num(res.hslb.scc_seconds, 3),
               Table::num(res.hslb.dimer_seconds, 3),
               Table::num(res.hslb.total_seconds, 3),
               Table::num(res.hslb.efficiency(nodes), 3),
               Table::num(res.hslb.group_imbalance(), 3)});
  std::printf("%s\n", cmp.str().c_str());
  std::printf("HSLB speedup over DLB: %.2fx (predicted SCC %.3f s, "
              "actual %.3f s)\n",
              res.dlb.total_seconds / res.hslb.total_seconds,
              res.predicted_scc_seconds, res.hslb.scc_seconds);

  // Load balancing must not change the chemistry: both schedulers report
  // the same FMO2 energy as the schedule-independent reference.
  const auto reference = fmo2_energy(sys);
  std::printf("\nFMO2 energy: %.6f Ha (DLB run %.6f, HSLB run %.6f — "
              "schedule-independent)\n",
              reference.total(), res.dlb.energy.total(),
              res.hslb.energy.total());
  return 0;
}
