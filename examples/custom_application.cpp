// Bring-your-own-application example: plugging a custom coupled code into
// the HSLB pipeline.
//
//   $ ./build/examples/custom_application
//
// §V of the paper: "It is our intention to develop a 'black box' from HSLB
// which would allow anyone ... to run [their code] efficiently on
// supercomputers or clusters." This example shows the full recipe for a
// made-up three-stage seismic imaging pipeline:
//
//   wavefield  - heavy forward solver        (concurrent with the others)
//   migration  - medium imaging kernel        \  these two share a node
//   qc         - light quality-control pass   /  block, running in sequence
//
// i.e. total = max( T_wave, T_mig + T_qc ) with n_wave + max(n_mig, n_qc)
// <= N. Everything below uses only public API: gather(), perf::fit(),
// minlp::Model + minlp::solve(), sim::TaskGraph.
#include <cmath>
#include <cstdio>

#include "hslb/gather.hpp"
#include "minlp/bnb.hpp"
#include "perf/fit.hpp"
#include "sim/noise.hpp"
#include "sim/taskgraph.hpp"

int main() {
  using namespace hslb;
  constexpr long long kNodes = 256;

  // --- the "application" (in reality: your job script + timers) ----------
  const perf::Model wave_truth{9000.0, 2e-4, 1.2, 8.0};
  const perf::Model mig_truth{2500.0, 0.0, 1.0, 5.0};
  const perf::Model qc_truth{300.0, 0.0, 1.0, 2.0};
  sim::NoiseModel noise(0.03, 2024);
  const BenchmarkFn probe = [&](const std::string& task, long long n,
                                std::uint64_t) {
    const perf::Model& m = task == "wavefield" ? wave_truth
                           : task == "migration" ? mig_truth
                                                 : qc_truth;
    return noise.perturb(m.eval(static_cast<double>(n)));
  };

  // --- step 1+2: gather and fit -------------------------------------------
  const auto bench = gather({"wavefield", "migration", "qc"},
                            geometric_node_counts(2, kNodes, 5), probe);
  const auto fits = perf::fit_all(bench);
  std::array<perf::Model, 3> models;
  for (std::size_t i = 0; i < 3; ++i) {
    models[i] = fits[i].second.model;
    std::printf("fit %-10s %s  (R^2 %.4f)\n", fits[i].first.c_str(),
                models[i].str().c_str(), fits[i].second.r2);
  }

  // --- step 3: express your layout as a MINLP ------------------------------
  // Variables: node counts (integer), per-stage times (epigraph), total T.
  minlp::Model m;
  double t_max = 0.0;
  for (const auto& pm : models) t_max += pm.eval(2.0);
  std::array<std::size_t, 3> n_var{}, t_var{};
  const char* names[3] = {"wavefield", "migration", "qc"};
  for (std::size_t i = 0; i < 3; ++i) {
    n_var[i] = m.add_integer(2.0, static_cast<double>(kNodes),
                             std::string("n_") + names[i]);
    t_var[i] = m.add_continuous(0.0, t_max, std::string("t_") + names[i]);
    const auto pm = models[i];
    const auto nv = n_var[i], tv = t_var[i];
    minlp::NonlinearConstraint con;
    con.name = std::string("T_") + names[i];
    con.vars = {nv, tv};
    con.value = [nv, tv, pm](std::span<const double> x) {
      return pm.eval(x[nv]) - x[tv];
    };
    con.gradient = [nv, tv, pm](std::span<const double> x) {
      return std::vector<minlp::GradEntry>{{nv, pm.deriv_n(x[nv])}, {tv, -1.0}};
    };
    m.add_nonlinear(std::move(con));
  }
  const auto T = m.add_continuous(0.0, t_max, "T");
  m.set_objective(T, 1.0);
  // T >= t_wave;  T >= t_mig + t_qc (they run sequentially).
  m.add_linear({{T, 1.0}, {t_var[0], -1.0}}, 0.0, lp::kInf);
  m.add_linear({{T, 1.0}, {t_var[1], -1.0}, {t_var[2], -1.0}}, 0.0, lp::kInf);
  // wavefield block + imaging block <= machine; mig and qc share a block.
  m.add_linear({{n_var[0], 1.0}, {n_var[1], 1.0}}, 0.0,
               static_cast<double>(kNodes));
  m.add_linear({{n_var[2], 1.0}, {n_var[1], -1.0}}, -lp::kInf, 0.0);

  const auto sol = minlp::solve(m);
  std::printf("\nsolver: %s in %.3f s (%zu nodes, %zu cuts, gap %g)\n",
              minlp::to_string(sol.status).c_str(), sol.seconds, sol.nodes,
              sol.cuts, sol.gap);
  std::array<long long, 3> alloc{};
  for (std::size_t i = 0; i < 3; ++i) {
    alloc[i] = std::llround(sol.x[n_var[i]]);
    std::printf("  %-10s %4lld nodes  predicted %.2f s\n", names[i], alloc[i],
                models[i].eval(static_cast<double>(alloc[i])));
  }
  std::printf("  predicted total %.2f s\n", sol.objective);

  // --- step 4: execute (here: simulated) and visualize ---------------------
  sim::TaskGraph g(kNodes);
  const auto mig_nodes = static_cast<std::size_t>(alloc[1]);
  g.add_task("wavefield",
             noise.perturb(wave_truth.eval(static_cast<double>(alloc[0]))),
             {0, static_cast<std::size_t>(alloc[0])});
  const auto mig = g.add_task(
      "migration", noise.perturb(mig_truth.eval(static_cast<double>(alloc[1]))),
      {static_cast<std::size_t>(alloc[0]), mig_nodes});
  g.add_task("qc", noise.perturb(qc_truth.eval(static_cast<double>(alloc[2]))),
             {static_cast<std::size_t>(alloc[0]),
              static_cast<std::size_t>(alloc[2])},
             {mig});
  const auto schedule = g.run();
  std::printf("\nexecuted schedule:\n%s", g.gantt(schedule).c_str());
  std::printf("actual total %.2f s (prediction error %.1f%%)\n",
              schedule.makespan,
              100.0 * (schedule.makespan - sol.objective) / sol.objective);
  return 0;
}
