// Bring-your-own-application example: plugging a custom coupled code into
// the HSLB pipeline engine.
//
//   $ ./build/examples/custom_application
//
// §V of the paper: "It is our intention to develop a 'black box' from HSLB
// which would allow anyone ... to run [their code] efficiently on
// supercomputers or clusters." That black box is hslb::Pipeline: implement
// the hslb::Application interface (benchmark plan, probe, problem builder,
// executor) and the engine runs Gather -> Fit -> Solve -> Execute for you,
// with parallel probing/fitting and a per-stage instrumentation report.
//
// The application here is a made-up three-stage seismic imaging pipeline:
//
//   wavefield  - heavy forward solver        (concurrent with the others)
//   migration  - medium imaging kernel        \  these two share a node
//   qc         - light quality-control pass   /  block, running in sequence
//
// i.e. total = max( T_wave, T_mig + T_qc ) with n_wave + max(n_mig, n_qc)
// <= N — a layout the budgeted greedy solvers cannot express, so the Solve
// hook builds a custom MINLP (minlp::Model + minlp::solve).
#include <array>
#include <cmath>
#include <cstdio>

#include "common/rng.hpp"
#include "hslb/pipeline.hpp"
#include "minlp/bnb.hpp"
#include "sim/noise.hpp"
#include "sim/runtime.hpp"

namespace {

using namespace hslb;

constexpr long long kNodes = 256;
constexpr std::uint64_t kSeed = 2024;

class SeismicImaging final : public Application {
 public:
  std::string name() const override { return "seismic-imaging"; }

  // --- step 1: every stage probed at the same few node counts -------------
  GatherPlan gather_plan() override {
    GatherPlan plan;
    const auto counts = geometric_node_counts(2, kNodes, 5);
    for (std::size_t t = 0; t < kTasks.size(); ++t)
      plan.emplace_back(kTasks[t], counts);
    return plan;
  }

  // In reality: your job script + timers. Noise is derived from the probe
  // coordinates so concurrent probes stay deterministic.
  double probe(const std::string& task, long long n,
               std::uint64_t rep) override {
    const std::size_t t = task_index(task);
    sim::NoiseModel noise(
        0.03, derive_seed(derive_seed(kSeed, t),
                          static_cast<std::uint64_t>(n) * 4096 + rep));
    return noise.perturb(truth_[t].eval(static_cast<double>(n)));
  }

  // --- step 3: express your layout as a MINLP ------------------------------
  SolveOutcome solve(const std::vector<std::pair<std::string, perf::FitResult>>&
                         fits) override {
    for (std::size_t t = 0; t < kTasks.size(); ++t) {
      models_[t] = fits[t].second.model;
      std::printf("fit %-10s %s  (R^2 %.4f)\n", fits[t].first.c_str(),
                  models_[t].str().c_str(), fits[t].second.r2);
    }

    // Variables: node counts (integer), per-stage times (epigraph), total T.
    minlp::Model m;
    double t_max = 0.0;
    for (const auto& pm : models_) t_max += pm.eval(2.0);
    std::array<std::size_t, 3> n_var{}, t_var{};
    for (std::size_t i = 0; i < 3; ++i) {
      n_var[i] = m.add_integer(2.0, static_cast<double>(kNodes),
                               "n_" + kTasks[i]);
      t_var[i] = m.add_continuous(0.0, t_max, "t_" + kTasks[i]);
      const auto pm = models_[i];
      const auto nv = n_var[i], tv = t_var[i];
      minlp::NonlinearConstraint con;
      con.name = "T_" + kTasks[i];
      con.vars = {nv, tv};
      con.value = [nv, tv, pm](std::span<const double> x) {
        return pm.eval(x[nv]) - x[tv];
      };
      con.gradient = [nv, tv, pm](std::span<const double> x) {
        return std::vector<minlp::GradEntry>{{nv, pm.deriv_n(x[nv])},
                                             {tv, -1.0}};
      };
      m.add_nonlinear(std::move(con));
    }
    const auto T = m.add_continuous(0.0, t_max, "T");
    m.set_objective(T, 1.0);
    // T >= t_wave;  T >= t_mig + t_qc (they run sequentially).
    m.add_linear({{T, 1.0}, {t_var[0], -1.0}}, 0.0, lp::kInf);
    m.add_linear({{T, 1.0}, {t_var[1], -1.0}, {t_var[2], -1.0}}, 0.0, lp::kInf);
    // wavefield block + imaging block <= machine; mig and qc share a block.
    m.add_linear({{n_var[0], 1.0}, {n_var[1], 1.0}}, 0.0,
                 static_cast<double>(kNodes));
    m.add_linear({{n_var[2], 1.0}, {n_var[1], -1.0}}, -lp::kInf, 0.0);

    const auto sol = minlp::solve(m);
    SolveOutcome out;
    out.predicted_total = sol.objective;
    out.solver.status = minlp::to_string(sol.status);
    out.solver.nodes = sol.nodes;
    out.solver.cuts = sol.cuts;
    out.solver.gap = sol.gap;
    out.solver.seconds = sol.seconds;
    for (std::size_t i = 0; i < 3; ++i) {
      const auto nodes = std::llround(sol.x[n_var[i]]);
      out.allocation.tasks.push_back(
          {kTasks[i], nodes, models_[i].eval(static_cast<double>(nodes))});
    }
    out.allocation.predicted_total = sol.objective;
    return out;
  }

  // --- step 4: execute on the runtime (here: simulated) and visualize ------
  // Durations are the ground-truth models; execution-time variability comes
  // from the runtime's keyed Perturbation rather than ad-hoc noise draws,
  // so the trace the pipeline reports is the schedule that actually ran.
  double execute(const SolveOutcome& solution) override {
    std::array<long long, 3> alloc{};
    for (std::size_t i = 0; i < 3; ++i)
      alloc[i] = solution.allocation.find(kTasks[i]).nodes;

    sim::Runtime rt(machine());
    rt.add_task("wavefield", truth_[0].eval(static_cast<double>(alloc[0])),
                {0, static_cast<std::size_t>(alloc[0])}, {}, "imaging");
    const auto mig = rt.add_task(
        "migration", truth_[1].eval(static_cast<double>(alloc[1])),
        {static_cast<std::size_t>(alloc[0]), static_cast<std::size_t>(alloc[1])},
        {}, "imaging");
    rt.add_task("qc", truth_[2].eval(static_cast<double>(alloc[2])),
                {static_cast<std::size_t>(alloc[0]),
                 static_cast<std::size_t>(alloc[2])},
                {mig}, "imaging");

    sim::Perturbation perturb;
    perturb.noise_cv = 0.03;
    perturb.seed = derive_seed(kSeed, 1000);
    run_ = rt.run(perturb);
    std::printf("\nexecuted schedule:\n%s", run_.trace.gantt().c_str());
    return run_.makespan;
  }

  // Exposing the machine and trace lets the engine's report print runtime
  // occupancy/imbalance next to the Gather/Fit/Solve instrumentation.
  sim::Machine machine() const override {
    return sim::Machine{"cluster", static_cast<std::size_t>(kNodes), 1};
  }
  const sim::Trace* execution_trace() const override {
    return run_.trace.events.empty() ? nullptr : &run_.trace;
  }
  bool execution_completed() const override { return run_.completed; }

 private:
  sim::RunResult run_;
  static std::size_t task_index(const std::string& task) {
    for (std::size_t t = 0; t < kTasks.size(); ++t)
      if (kTasks[t] == task) return t;
    return 0;
  }

  static const std::array<std::string, 3> kTasks;
  // The "application" ground truth the probes observe through noise.
  std::array<perf::Model, 3> truth_{perf::Model{9000.0, 2e-4, 1.2, 8.0},
                                    perf::Model{2500.0, 0.0, 1.0, 5.0},
                                    perf::Model{300.0, 0.0, 1.0, 2.0}};
  std::array<perf::Model, 3> models_{};
};

const std::array<std::string, 3> SeismicImaging::kTasks = {
    "wavefield", "migration", "qc"};

}  // namespace

int main() {
  SeismicImaging app;
  hslb::PipelineOptions options;
  options.threads = 0;  // hardware concurrency
  const auto run = hslb::Pipeline(options).run(app);

  std::printf("\n");
  for (const auto& t : run.solution.allocation.tasks) {
    std::printf("  %-10s %4lld nodes  predicted %.2f s\n", t.task.c_str(),
                t.nodes, t.predicted_seconds);
  }
  std::printf("\n%s", run.report.str().c_str());
  std::printf("actual total %.2f s (prediction error %+.1f%%)\n",
              run.actual_total, 100.0 * run.report.prediction_error());
  return 0;
}
