// Quickstart: the four HSLB steps on a toy two-task problem.
//
//   $ ./build/examples/quickstart
//
// A "simulation" with two components — a heavy solver and a light
// analysis — must share 64 nodes. We benchmark both at a few node counts,
// fit the paper's performance function T(n) = a/n + b*n^c + d to each,
// solve the min-max allocation, and compare against a naive even split.
#include <cstdio>

#include "hslb/budget.hpp"
#include "hslb/gather.hpp"
#include "perf/fit.hpp"
#include "sim/noise.hpp"

int main() {
  using namespace hslb;

  // The "application" we pretend to benchmark: true scaling behaviour that
  // the pipeline has to discover from noisy timings.
  const perf::Model solver_truth{1200.0, 0.0, 1.0, 3.0};   // heavy
  const perf::Model analysis_truth{150.0, 0.0, 1.0, 1.0};  // light
  sim::NoiseModel noise(0.02, /*seed=*/7);
  const BenchmarkFn probe = [&](const std::string& task, long long nodes,
                                std::uint64_t) {
    const auto& truth = task == "solver" ? solver_truth : analysis_truth;
    return noise.perturb(truth.eval(static_cast<double>(nodes)));
  };

  // Step 1 — Gather: benchmark both tasks at 5 geometric node counts.
  const auto counts = geometric_node_counts(1, 64, 5);
  const auto bench = gather({"solver", "analysis"}, counts, probe);
  std::printf("step 1 (gather): %zu samples per task at node counts 1..64\n",
              bench.tasks.front().samples.size());

  // Step 2 — Fit: one performance model per task.
  const auto fits = perf::fit_all(bench);
  std::vector<BudgetTask> tasks;
  for (const auto& [name, fit] : fits) {
    std::printf("step 2 (fit):    %-8s %s  (R^2 = %.4f)\n", name.c_str(),
                fit.model.str().c_str(), fit.r2);
    tasks.push_back(BudgetTask{name, fit.model, 1, 64});
  }

  // Step 3 — Solve: min-max node allocation under a 64-node budget.
  const auto alloc = solve_min_max(tasks, 64);
  std::printf("step 3 (solve):\n%s", alloc.str().c_str());

  // Step 4 — Execute: compare against the naive 32/32 split on the truth.
  const double hslb_makespan =
      std::max(solver_truth.eval(static_cast<double>(alloc.find("solver").nodes)),
               analysis_truth.eval(
                   static_cast<double>(alloc.find("analysis").nodes)));
  const double even_makespan =
      std::max(solver_truth.eval(32.0), analysis_truth.eval(32.0));
  std::printf("step 4 (execute): HSLB makespan %.2f s vs even-split %.2f s "
              "(%.0f%% faster)\n",
              hslb_makespan, even_makespan,
              100.0 * (1.0 - hslb_makespan / even_makespan));
  return 0;
}
